"""Measure dispatcher: one ``measure()`` over the three computation paths.

PRs 1–4 left the repo with three ways to compute each of the paper's
measures — the exact enumeration/LP engine (:mod:`repro.core.load`,
:mod:`repro.core.availability`), the closed forms
(:mod:`repro.core.analytic`) and the sampled/Monte-Carlo estimators — each
guarded by its own scattered :class:`~repro.exceptions.ComputationError`
branches.  This module turns that guard-rail logic into one explicit,
testable policy:

``method="auto"`` resolution order (per measure):

1. **analytic** — the construction's closed form, exact at any ``n``
   (cross-validated to ``1e-9`` against the exact engine, see
   ``tests/test_analytic.py``);
2. **exact** — enumeration/LP, when the system fits the
   :class:`Budget` (``max_universe`` crash configurations for ``Fp``,
   ``max_quorums`` for the load LP);
3. **sampled** — Monte-Carlo ``Fp`` / the sampled-support load estimate,
   with the error bound recorded on the result.

Forcing ``method="exact"``/``"analytic"``/``"sampled"`` skips the policy
and raises a clear :class:`~repro.exceptions.ComputationError` when that
path cannot run.  Every result is a :class:`MeasureResult` that records
*which* path actually ran and its error bound, so downstream tables can
label values honestly.

>>> from repro.api import measure
>>> measure("mgrid", "load", side=7, b=3).value  # doctest: +ELLIPSIS
0.4897...
>>> measure("mgrid", "fp", side=4, b=1, p=0.1, method="auto").method_used
'analytic'
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import SystemSpec, build, spec_of
from repro.core import analytic as analytic_mod
from repro.core import availability as availability_mod
from repro.core import load as load_mod
from repro.core.quorum_system import ImplicitQuorumSystem, QuorumSystem
from repro.exceptions import ComputationError, InvalidParameterError

__all__ = ["Budget", "MeasureResult", "available_measures", "measure"]

#: Measures the dispatcher understands, with a one-line meaning each.
MEASURES: dict[str, str] = {
    "load": "L(Q): access probability of the busiest server under the best strategy",
    "fp": "Fp(Q): probability every quorum is hit under iid crashes (needs p)",
    "availability": "1 - Fp(Q) (needs p)",
    "masking": "b: largest number of Byzantine failures the system masks",
    "resilience": "f = MT(Q) - 1: crash failures always survived",
    "min-quorum": "c(Q): size of the smallest quorum",
    "intersection": "IS(Q): smallest pairwise quorum intersection",
    "transversal": "MT(Q): size of the smallest transversal",
}

#: Methods a caller may request.
METHODS = ("auto", "exact", "analytic", "sampled")


def available_measures() -> dict[str, str]:
    """Return the supported measure names with their one-line meanings."""
    return dict(MEASURES)


@dataclass(frozen=True)
class Budget:
    """Resource limits the ``auto`` policy respects.

    Attributes
    ----------
    max_universe:
        Largest ``n`` for which exact ``Fp`` enumeration over ``2^n`` crash
        configurations is allowed.
    max_quorums:
        Largest quorum family the load LP / combinatorial enumeration may
        materialise.
    trials:
        Monte-Carlo trial count for sampled ``Fp``.
    num_samples:
        Sample size when a sampled load estimate must stand in for the LP.
    seed:
        Seed for every sampled path, so results are reproducible.
    """

    max_universe: int = 22
    max_quorums: int = 50_000
    trials: int = 20_000
    num_samples: int = 256
    seed: int = 0

    def __post_init__(self):
        for name in ("max_universe", "max_quorums", "trials", "num_samples"):
            if getattr(self, name) < 1:
                raise InvalidParameterError(
                    f"budget {name} must be >= 1, got {getattr(self, name)}"
                )


@dataclass(frozen=True)
class MeasureResult:
    """The outcome of one measure computation, with provenance.

    Attributes
    ----------
    measure / value:
        What was computed and its value.
    method_requested / method_used:
        The caller's ``method`` argument, and the path that actually ran —
        one of ``"analytic"``, ``"analytic-straight-lines"``,
        ``"analytic-bound"``, ``"lp"``, ``"enumeration"``,
        ``"inclusion-exclusion"``, ``"monte-carlo"``, ``"sampled-lp"``,
        ``"combinatorial"``.
    error_bound:
        A bound on ``|value - true value|``: ``0.0`` for exact paths, the
        95% confidence half-width for Monte-Carlo, ``inf`` when only an
        upper/lower bound is known (see ``details["kind"]``).
    system / n:
        The system's display name and universe size.
    p:
        The crash probability the measure was evaluated at (``None`` for
        crash-free measures).
    details:
        Method-specific extras (trials, std_error, sample size, ...).
    """

    measure: str
    value: float
    method_requested: str
    method_used: str
    error_bound: float
    system: str
    n: int
    p: float | None = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Return a strictly JSON-serialisable dict (RFC 8259).

        An infinite ``error_bound`` (the value is only a bound, see
        ``details["kind"]``) is emitted as ``null`` — Python's ``Infinity``
        token is rejected by non-Python JSON parsers.
        """
        payload = {
            "measure": self.measure,
            "value": self.value,
            "method_requested": self.method_requested,
            "method_used": self.method_used,
            "error_bound": (
                self.error_bound if math.isfinite(self.error_bound) else None
            ),
            "system": self.system,
            "n": self.n,
        }
        if self.p is not None:
            payload["p"] = self.p
        if self.details:
            payload["details"] = dict(self.details)
        return payload


def _resolve_system(
    system_or_spec: QuorumSystem | SystemSpec | str, params: dict
) -> QuorumSystem:
    if isinstance(system_or_spec, QuorumSystem):
        if params:
            raise InvalidParameterError(
                "construction parameters only apply when passing a name or "
                "spec, not an already-built system"
            )
        return system_or_spec
    if isinstance(system_or_spec, (str, SystemSpec)):
        if isinstance(system_or_spec, SystemSpec) and params:
            raise InvalidParameterError(
                "pass parameters inside the SystemSpec or as keywords, not both"
            )
        return build(system_or_spec, **params) if params else build(system_or_spec)
    raise InvalidParameterError(
        "measure() takes a QuorumSystem, a construction name or a SystemSpec, "
        f"got {type(system_or_spec).__name__}"
    )


def _base_of(system: QuorumSystem) -> QuorumSystem:
    """Resolve an implicit view to its base construction (measures are its)."""
    return system.base if isinstance(system, ImplicitQuorumSystem) else system


def _enumerable_within(system: QuorumSystem, budget: Budget) -> bool:
    """Whether the (base) family fits the exact engines' quorum budget."""
    base = _base_of(system)
    if not base.enumerates_all_quorums:
        return False
    try:
        return base.num_quorums() <= budget.max_quorums
    except ComputationError:
        return False


#: (value, method_used, error_bound, details) — the shape every path returns.
_Outcome = tuple[float, str, float, dict[str, object]]


# ----------------------------------------------------------------------
# Per-measure paths.  Each returns (value, method_used, error_bound, details)
# or raises ComputationError when the path cannot run.
# ----------------------------------------------------------------------
def _load_exact(system: QuorumSystem, budget: Budget) -> _Outcome:
    base = _base_of(system)
    if not _enumerable_within(base, budget):
        raise ComputationError(
            f"{base.name}: the load LP needs an enumerable family within "
            f"{budget.max_quorums} quorums"
        )
    result = load_mod.exact_load(base, quorum_limit=budget.max_quorums)
    return float(result.load), "lp", 0.0, {"lp_method": result.method}


def _load_analytic(system: QuorumSystem, budget: Budget) -> _Outcome:
    result = analytic_mod.analytic_load(_base_of(system))
    return float(result.load), result.method, 0.0, {}


def _load_sampled(system: QuorumSystem, budget: Budget) -> _Outcome:
    if isinstance(system, ImplicitQuorumSystem):
        implicit = system
    else:
        implicit = ImplicitQuorumSystem(
            system, num_samples=budget.num_samples, seed=budget.seed
        )
    strategy = implicit.sampled_optimal_strategy()
    value = strategy.induced_system_load(implicit.universe)
    return (
        float(value),
        "sampled-lp",
        float("inf"),
        {"num_samples": implicit.num_samples, "kind": "upper-bound"},
    )


def _fp_exact(system: QuorumSystem, p: float, budget: Budget) -> _Outcome:
    base = _base_of(system)
    if base.n > budget.max_universe:
        raise ComputationError(
            f"{base.name}: exact Fp enumerates 2^n crash configurations and "
            f"n={base.n} exceeds the budget's max_universe={budget.max_universe}"
        )
    result = availability_mod.exact_failure_probability(
        base, p, max_universe=budget.max_universe
    )
    return float(result.value), "enumeration", 0.0, {}


def _fp_analytic(system: QuorumSystem, p: float, budget: Budget) -> _Outcome:
    result = analytic_mod.analytic_failure_probability(_base_of(system), p)
    error_bound = 0.0 if result.method == "analytic" else float("inf")
    details: dict[str, object] = {}
    if result.method == "analytic-straight-lines":
        details["kind"] = "upper-bound (exact for the straight-line family)"
    elif result.method == "analytic-bound":
        details["kind"] = "upper-bound"
    elif result.method in ("enumeration", "inclusion-exclusion"):
        error_bound = 0.0
    return float(result.value), result.method, error_bound, details


def _fp_sampled(system: QuorumSystem, p: float, budget: Budget) -> _Outcome:
    base = _base_of(system)
    rng = np.random.default_rng(budget.seed)
    estimator = getattr(base, "crash_probability", None)
    if callable(estimator):
        # The construction's own Monte-Carlo sampler scales to any n (it
        # samples crash patterns, not quorums).  A closed-form
        # crash_probability(p) without a trials knob is not a sampler.
        try:
            takes_trials = "trials" in inspect.signature(estimator).parameters
        except (TypeError, ValueError):
            takes_trials = False
        if takes_trials:
            value = float(estimator(p, trials=budget.trials, rng=rng))
            half_width = 1.96 * float(
                np.sqrt(max(value * (1.0 - value), 0.0) / budget.trials)
            )
            return (
                value,
                "monte-carlo",
                half_width,
                {
                    "trials": budget.trials,
                    "std_error": half_width / 1.96,
                },
            )
    if not _enumerable_within(base, budget):
        raise ComputationError(
            f"{base.name} has no crash-pattern sampler and its family is not "
            "enumerable; no sampled Fp path applies"
        )
    result = availability_mod.monte_carlo_failure_probability(
        base, p, trials=budget.trials, rng=rng
    )
    half_width = 1.96 * result.std_error
    return (
        float(result.value),
        "monte-carlo",
        float(half_width),
        {"trials": result.trials, "std_error": result.std_error},
    )


def _combinatorial(system: QuorumSystem, measure_name: str, budget: Budget) -> _Outcome:
    """c / IS / MT / f / b — closed form when the construction has one,
    else enumeration within the budget."""
    base = _base_of(system)
    getter = {
        "masking": "masking_bound",
        "resilience": "resilience",
        "min-quorum": "min_quorum_size",
        "intersection": "min_intersection_size",
        "transversal": "min_transversal_size",
    }[measure_name]
    value = getattr(base, getter)()
    return float(value), "combinatorial", 0.0, {}


def measure(
    system_or_spec: QuorumSystem | SystemSpec | str,
    measure_name: str = "load",
    *,
    method: str = "auto",
    p: float | None = None,
    budget: Budget | None = None,
    **params: object,
) -> MeasureResult:
    """Compute one of the paper's measures through the dispatch policy.

    Parameters
    ----------
    system_or_spec:
        A built :class:`~repro.core.quorum_system.QuorumSystem`, a registry
        name (with construction parameters as extra keywords) or a
        :class:`~repro.api.registry.SystemSpec`.
    measure_name:
        One of :func:`available_measures` (default ``"load"``).
    method:
        ``"auto"`` applies the documented policy; ``"exact"``,
        ``"analytic"`` and ``"sampled"`` force that path or raise.
    p:
        Per-server crash probability — required by ``"fp"`` and
        ``"availability"``, rejected by the crash-free measures.
    budget:
        Resource limits (:class:`Budget`); defaults are the library-wide
        guard rails.

    Returns
    -------
    MeasureResult
        The value plus provenance: which path ran and its error bound.
    """
    if measure_name not in MEASURES:
        raise InvalidParameterError(
            f"unknown measure {measure_name!r}; available: "
            f"{', '.join(sorted(MEASURES))}"
        )
    if method not in METHODS:
        raise InvalidParameterError(
            f"unknown method {method!r}; choose one of {', '.join(METHODS)}"
        )
    budget = budget if budget is not None else Budget()
    system = _resolve_system(system_or_spec, params)

    needs_p = measure_name in ("fp", "availability")
    if needs_p:
        if p is None:
            raise InvalidParameterError(
                f"measure {measure_name!r} needs the crash probability p"
            )
        if not 0.0 <= p <= 1.0:
            raise InvalidParameterError(
                f"crash probability must lie in [0, 1], got {p}"
            )
    elif p is not None:
        raise InvalidParameterError(
            f"measure {measure_name!r} does not take a crash probability"
        )

    if measure_name in ("masking", "resilience", "min-quorum", "intersection", "transversal"):
        if method == "sampled":
            raise ComputationError(
                f"measure {measure_name!r} has no sampled estimator; "
                "it is a combinatorial invariant"
            )
        value, used, error_bound, details = _combinatorial(system, measure_name, budget)
    elif measure_name == "load":
        paths = {"exact": _load_exact, "analytic": _load_analytic, "sampled": _load_sampled}
        value, used, error_bound, details = _dispatch(paths, method, system, budget)
    else:  # fp / availability
        paths = {
            "exact": lambda s, bud: _fp_exact(s, p, bud),
            "analytic": lambda s, bud: _fp_analytic(s, p, bud),
            "sampled": lambda s, bud: _fp_sampled(s, p, bud),
        }
        value, used, error_bound, details = _dispatch(paths, method, system, budget)
        if measure_name == "availability":
            value = 1.0 - value

    try:
        details = {**details, "spec": spec_of(system).to_dict()}
    except InvalidParameterError:
        pass  # ad-hoc explicit/composed systems have no canonical spec
    return MeasureResult(
        measure=measure_name,
        value=value,
        method_requested=method,
        method_used=used,
        error_bound=error_bound,
        system=system.name,
        n=system.n,
        p=p if needs_p else None,
        details=details,
    )


def _dispatch(paths: dict, method: str, system: QuorumSystem, budget: Budget) -> _Outcome:
    """Run the requested path, or the ``auto`` order analytic → exact → sampled."""
    if method != "auto":
        return paths[method](system, budget)
    failures = []
    for name in ("analytic", "exact", "sampled"):
        try:
            return paths[name](system, budget)
        except ComputationError as exc:
            failures.append(f"{name}: {exc}")
    raise ComputationError(
        "no computation path applies under the current budget — "
        + "; ".join(failures)
    )
