"""Construction registry: every construction under one string name.

The facade's first layer.  Each construction in :mod:`repro.constructions`
is registered under a stable string name with a typed parameter spec, so the
whole catalogue is reachable without imports::

    >>> from repro.api import build, available_constructions
    >>> system = build("mgrid", n=49, b=3)
    >>> system.name
    'M-Grid(7x7, b=3)'
    >>> "tree" in available_constructions()
    True

A :class:`SystemSpec` is the declarative, JSON-stable description of a
system — ``(construction name, parameters)`` — and round-trips through the
registry: ``spec_of(build(spec)) == spec``.  Specs are what the measure
dispatcher (:mod:`repro.api.measures`), the workload runner
(:mod:`repro.api.workloads`) and the ``python -m repro`` CLI all accept, so
an experiment is reproducible from a dict.

Grid-shaped constructions additionally accept ``n`` as a convenience alias
for ``side`` (``build("grid", n=25)`` is ``build("grid", side=5)``); the
universe size must then be a perfect square.  Threshold-family entries take
``n`` directly.

Parameter validation is uniform: a wrong name, a missing required parameter
or an out-of-range value raises
:class:`~repro.exceptions.InvalidParameterError` (which subclasses both
``ComputationError`` and ``ValueError``); infeasible *shapes* (e.g. an
M-Grid asked to mask more failures than a grid of that side can) keep
raising the construction's own
:class:`~repro.exceptions.ConstructionError`.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.constructions.boost_fpp import BoostedFPP
from repro.constructions.crumbling_wall import CrumblingWall
from repro.constructions.fpp import FiniteProjectivePlane
from repro.constructions.grid import MaskingGrid, RegularGrid
from repro.constructions.mgrid import MGrid
from repro.constructions.mpath import MPath
from repro.constructions.recursive_threshold import RecursiveThreshold
from repro.constructions.threshold import (
    ThresholdQuorumSystem,
    majority,
    masking_threshold,
)
from repro.constructions.tree import TreeQuorumSystem
from repro.constructions.wheel import WheelQuorumSystem
from repro.core.quorum_system import ImplicitQuorumSystem, QuorumSystem
from repro.exceptions import InvalidParameterError

__all__ = [
    "ConstructionEntry",
    "ParamSpec",
    "SystemSpec",
    "available_constructions",
    "build",
    "get_entry",
    "register",
    "spec_of",
]


@dataclass(frozen=True)
class ParamSpec:
    """One typed parameter of a registered construction."""

    name: str
    type: type = int
    required: bool = True
    default: object = None
    doc: str = ""

    def coerce(self, value: object) -> object:
        """Coerce/validate one user-supplied value to the declared type."""
        if self.type is int:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise InvalidParameterError(
                    f"parameter {self.name!r} must be an integer, got {value!r}"
                )
            if isinstance(value, float):
                if not value.is_integer():
                    raise InvalidParameterError(
                        f"parameter {self.name!r} must be an integer, got {value!r}"
                    )
                value = int(value)
            return int(value)
        if self.type is tuple:
            try:
                return tuple(int(item) for item in value)
            except (TypeError, ValueError) as exc:
                raise InvalidParameterError(
                    f"parameter {self.name!r} must be a sequence of integers, "
                    f"got {value!r}"
                ) from exc
        return self.type(value)


@dataclass(frozen=True)
class SystemSpec:
    """A declarative, JSON-stable description of a quorum system.

    Attributes
    ----------
    construction:
        Registry name (``available_constructions()``).
    params:
        Construction parameters, canonicalised by :func:`build` /
        :func:`spec_of` (aliases resolved, defaults filled in).
    """

    construction: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict:
        """Return a JSON-serialisable dict (tuples become lists)."""
        return {
            "construction": self.construction,
            "params": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in sorted(self.params.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if "construction" not in payload:
            raise InvalidParameterError(
                f"a system spec needs a 'construction' key, got {sorted(payload)}"
            )
        return cls(
            construction=str(payload["construction"]),
            params=dict(payload.get("params", {})),
        )

    def build(self) -> QuorumSystem:
        """Instantiate the system this spec describes."""
        return build(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        normalised = tuple(
            (key, tuple(value) if isinstance(value, (list, tuple)) else value)
            for key, value in sorted(self.params.items())
        )
        return hash((self.construction, normalised))


@dataclass(frozen=True)
class ConstructionEntry:
    """One registered construction.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        Callable receiving the canonical parameters as keywords.
    params:
        The typed parameter specs, in canonical order.
    summary:
        One-line description for tables and ``python -m repro list``.
    masking:
        Whether the construction can mask ``b > 0`` Byzantine failures
        (regular systems like tree/wheel/grid/fpp cannot; they appear in the
        registry for completeness and as boosting inputs, see
        ``docs/api.md``).
    extract:
        Given a built instance, return its canonical parameter dict
        (the inverse of ``factory`` — what makes specs round-trippable).
    accepts_n_alias:
        Whether ``n`` may be passed instead of ``side`` (grid shapes).
    instance_of:
        The concrete class produced, used by :func:`spec_of` dispatch.
    """

    name: str
    factory: Callable[..., QuorumSystem]
    params: tuple[ParamSpec, ...]
    summary: str
    masking: bool
    extract: Callable[[QuorumSystem], dict]
    accepts_n_alias: bool = False
    instance_of: type | None = None

    def normalise(self, raw: dict) -> dict:
        """Resolve aliases, apply defaults, coerce types, reject strays."""
        supplied = {key: value for key, value in raw.items() if value is not None}
        if self.accepts_n_alias and "n" in supplied:
            if "side" in supplied:
                raise InvalidParameterError(
                    f"{self.name}: pass either 'side' or its alias 'n', not both"
                )
            n = supplied.pop("n")
            try:
                n = int(n)
            except (TypeError, ValueError) as exc:
                raise InvalidParameterError(
                    f"{self.name}: 'n' must be an integer, got {n!r}"
                ) from exc
            side = math.isqrt(n)
            if side * side != n:
                raise InvalidParameterError(
                    f"{self.name} is built over a side x side grid; "
                    f"n={n} is not a perfect square (nearest: {side * side})"
                )
            supplied["side"] = side
        known = {spec.name for spec in self.params}
        stray = sorted(set(supplied) - known)
        if stray:
            raise InvalidParameterError(
                f"{self.name} does not take parameter(s) {stray}; "
                f"it takes {sorted(known)}"
            )
        canonical: dict = {}
        for spec in self.params:
            if spec.name in supplied:
                canonical[spec.name] = spec.coerce(supplied[spec.name])
            elif spec.required:
                raise InvalidParameterError(
                    f"{self.name} requires parameter {spec.name!r} "
                    f"({spec.doc or spec.type.__name__})"
                )
            elif spec.default is not None:
                canonical[spec.name] = spec.default
        return canonical


_REGISTRY: dict[str, ConstructionEntry] = {}


def register(entry: ConstructionEntry) -> ConstructionEntry:
    """Add an entry to the registry (name collisions are an error)."""
    if entry.name in _REGISTRY:
        raise InvalidParameterError(
            f"construction {entry.name!r} is already registered"
        )
    _REGISTRY[entry.name] = entry
    return entry


def available_constructions() -> tuple[str, ...]:
    """Return the registered construction names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_entry(name: str) -> ConstructionEntry:
    """Return the registry entry for ``name``.

    Raises
    ------
    InvalidParameterError
        For unknown names (the message lists the catalogue).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown construction {name!r}; available: "
            f"{', '.join(available_constructions())}"
        ) from None


def build(spec: SystemSpec | str, /, **params: object) -> QuorumSystem:
    """Build a quorum system from a registry name or a :class:`SystemSpec`.

    ``build("mgrid", n=49, b=3)`` and
    ``build(SystemSpec("mgrid", {"side": 7, "b": 3}))`` are equivalent.
    """
    if isinstance(spec, SystemSpec):
        if params:
            raise InvalidParameterError(
                "pass parameters inside the SystemSpec or as keywords, not both"
            )
        name, raw = spec.construction, spec.params
    elif isinstance(spec, str):
        name, raw = spec, params
    else:
        raise InvalidParameterError(
            f"build() takes a construction name or a SystemSpec, got {type(spec).__name__}"
        )
    entry = get_entry(name)
    canonical = entry.normalise(raw)
    return entry.factory(**canonical)


def spec_of(system: QuorumSystem) -> SystemSpec:
    """Return the canonical :class:`SystemSpec` of a built system.

    The inverse of :func:`build`: for every registered construction,
    ``spec_of(build(spec)) == spec`` (with aliases resolved and defaults
    filled in).  An :class:`~repro.core.quorum_system.ImplicitQuorumSystem`
    resolves to its *base* construction's spec.

    Raises
    ------
    InvalidParameterError
        When the system's class is not in the registry (e.g. an ad-hoc
        :class:`~repro.core.quorum_system.ExplicitQuorumSystem`).
    """
    if isinstance(system, ImplicitQuorumSystem):
        system = system.base
    for entry in _REGISTRY.values():
        if entry.instance_of is not None and type(system) is entry.instance_of:
            return SystemSpec(entry.name, entry.extract(system))
    raise InvalidParameterError(
        f"{type(system).__name__} is not a registered construction; "
        "explicit/composed systems have no canonical spec"
    )


# ----------------------------------------------------------------------
# The catalogue.  ``masking_threshold`` and ``majority`` produce
# ThresholdQuorumSystem instances; ``spec_of`` maps them all onto the one
# "threshold" entry, which canonicalises to ``b`` when the threshold has
# the [MR98a] masking form and to a raw ``k`` otherwise.
# ----------------------------------------------------------------------
def _threshold_params(system: ThresholdQuorumSystem) -> dict:
    n, k = system.n, system.k
    b_guess = (2 * k - n - 1) // 2
    # Only report the [MR98a] masking form when it would actually rebuild:
    # masking_threshold additionally requires 4b < n, so a raw high
    # threshold (e.g. 8-of-9) must round-trip through "k" instead.
    if (
        b_guess >= 0
        and 4 * b_guess < n
        and math.ceil((n + 2 * b_guess + 1) / 2) == k
    ):
        return {"n": n, "b": b_guess}
    return {"n": n, "k": k}


def _make_threshold(
    n: int, b: int | None = None, k: int | None = None
) -> ThresholdQuorumSystem:
    if n < 1:
        raise InvalidParameterError(f"universe size must be >= 1, got {n}")
    if b is not None and k is not None:
        raise InvalidParameterError(
            "threshold takes either the masking parameter 'b' or a raw "
            "threshold 'k', not both"
        )
    if k is not None:
        return ThresholdQuorumSystem(n, k)
    b = 0 if b is None else b
    if b < 0:
        raise InvalidParameterError(f"masking parameter must be >= 0, got {b}")
    return masking_threshold(n, b)


register(
    ConstructionEntry(
        name="threshold",
        factory=_make_threshold,
        params=(
            ParamSpec("n", doc="number of servers"),
            ParamSpec("b", required=False, doc="masking parameter (4b < n); default 0"),
            ParamSpec("k", required=False, doc="raw threshold (alternative to b)"),
        ),
        summary="[MR98a] Threshold: ceil((n+2b+1)/2)-of-n; optimal resilience, load ~ 1/2",
        masking=True,
        extract=_threshold_params,
        instance_of=ThresholdQuorumSystem,
    )
)


def _make_majority(n: int) -> ThresholdQuorumSystem:
    if n < 1:
        raise InvalidParameterError(f"universe size must be >= 1, got {n}")
    return majority(n)


register(
    ConstructionEntry(
        name="majority",
        factory=_make_majority,
        params=(ParamSpec("n", doc="number of servers"),),
        summary="simple majority (threshold with b=0)",
        masking=False,
        extract=lambda system: {"n": system.n},
        instance_of=None,  # spec_of reports it as "threshold" with b=0
    )
)


register(
    ConstructionEntry(
        name="grid",
        factory=RegularGrid,
        params=(ParamSpec("side", doc="grid side (n = side^2)"),),
        summary="[MR98a] regular grid baseline: one row + one column; b = 0",
        masking=False,
        extract=lambda system: {"side": system.side},
        accepts_n_alias=True,
        instance_of=RegularGrid,
    )
)

register(
    ConstructionEntry(
        name="masking-grid",
        factory=MaskingGrid,
        params=(
            ParamSpec("side", doc="grid side (n = side^2)"),
            ParamSpec("b", required=False, default=1, doc="masking parameter"),
        ),
        summary="[MR98a] masking grid: 2b+1 rows + one column",
        masking=True,
        extract=lambda system: {"side": system.side, "b": system.b},
        accepts_n_alias=True,
        instance_of=MaskingGrid,
    )
)

register(
    ConstructionEntry(
        name="mgrid",
        factory=MGrid,
        params=(
            ParamSpec("side", doc="grid side (n = side^2)"),
            ParamSpec("b", required=False, default=1, doc="masking parameter"),
        ),
        summary="M-Grid (Section 5.1): sqrt(b+1) rows + columns; optimal load",
        masking=True,
        extract=lambda system: {"side": system.side, "b": system.b},
        accepts_n_alias=True,
        instance_of=MGrid,
    )
)

register(
    ConstructionEntry(
        name="mpath",
        factory=MPath,
        params=(
            ParamSpec("side", doc="triangular-lattice side (n = side^2)"),
            ParamSpec("b", required=False, default=1, doc="masking parameter"),
        ),
        summary="M-Path (Section 7): disjoint lattice crossings; optimal load and Fp",
        masking=True,
        extract=lambda system: {"side": system.side, "b": system.b},
        accepts_n_alias=True,
        instance_of=MPath,
    )
)

register(
    ConstructionEntry(
        name="rt",
        factory=RecursiveThreshold,
        params=(
            ParamSpec("k", required=False, default=4, doc="branching factor"),
            ParamSpec("l", required=False, default=3, doc="inner threshold"),
            ParamSpec("depth", doc="recursion depth (n = k^depth)"),
        ),
        summary="RT(k,l) recursive threshold (Section 5.2): near-optimal availability",
        masking=True,
        extract=lambda system: {"k": system.k, "l": system.l, "depth": system.depth},
        instance_of=RecursiveThreshold,
    )
)

register(
    ConstructionEntry(
        name="boostfpp",
        factory=BoostedFPP,
        params=(
            ParamSpec("q", doc="projective-plane order (prime power)"),
            ParamSpec("b", required=False, default=1, doc="masking parameter"),
        ),
        summary="boostFPP (Section 6): FPP(q) boosted by (3b+1)-of-(4b+1) blocks",
        masking=True,
        extract=lambda system: {"q": system.q, "b": system.b},
        instance_of=BoostedFPP,
    )
)

register(
    ConstructionEntry(
        name="fpp",
        factory=FiniteProjectivePlane,
        params=(ParamSpec("q", doc="plane order (prime power)"),),
        summary="finite projective plane PG(2,q): optimal-load regular system; b = 0",
        masking=False,
        extract=lambda system: {"q": system.q},
        instance_of=FiniteProjectivePlane,
    )
)

register(
    ConstructionEntry(
        name="crumbling-wall",
        factory=lambda rows: CrumblingWall(list(rows)),
        params=(
            ParamSpec("rows", type=tuple, doc="row widths, e.g. [3, 4, 5]"),
        ),
        summary="crumbling wall: one full row + one element of each lower row; b = 0",
        masking=False,
        extract=lambda system: {"rows": tuple(system.row_widths)},
        instance_of=CrumblingWall,
    )
)

register(
    ConstructionEntry(
        name="tree",
        factory=TreeQuorumSystem,
        params=(ParamSpec("depth", doc="binary-tree depth (n = 2^(depth+1) - 1)"),),
        summary="[AE91] tree quorums: root-path to half-the-leaves; regular, b = 0",
        masking=False,
        extract=lambda system: {"depth": system.depth},
        instance_of=TreeQuorumSystem,
    )
)

register(
    ConstructionEntry(
        name="wheel",
        factory=WheelQuorumSystem,
        params=(ParamSpec("n", doc="number of servers (1 hub + n-1 rim)"),),
        summary="wheel: hub+spoke pairs plus the full rim; regular, b = 0",
        masking=False,
        extract=lambda system: {"n": system.n},
        instance_of=WheelQuorumSystem,
    )
)
