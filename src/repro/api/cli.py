"""``python -m repro`` — the facade from the shell.

Four commands drive the facade so paper tables, measure trajectories and
workload runs are reproducible without writing Python:

* ``python -m repro list`` — the construction registry, the measures and
  the scenario catalogue;
* ``python -m repro measure mgrid --n 49 --b 3 [--measure fp --p 0.1]`` —
  one measure through the dispatch policy (:mod:`repro.api.measures`);
* ``python -m repro run --construction mgrid --n 4096 --scenario crash`` —
  one workload experiment through the unified runner
  (:mod:`repro.api.workloads`);
* ``python -m repro table`` / ``python -m repro compare grid mgrid rt ...``
  — the Section 8 comparison and ad-hoc multi-construction comparisons;
* ``python -m repro lint [--json]`` — the AST invariant linter and strict
  typing gate (:mod:`repro.lint`), machine-checking the code-level
  contracts the reproduction relies on;
* ``python -m repro serve -c threshold --n 5 --cluster-file cluster.json``
  — the networked service (:mod:`repro.service`): spawn one replica process
  per server (or, with ``--index``, run a single replica in-process) and
  publish their addresses;
* ``python -m repro loadgen --cluster cluster.json --ops 1000`` — drive
  concurrent live clients against a running cluster, check the recorded
  history, and emit a ``WorkloadReport``-shaped JSON artefact.

``--json`` switches every command to a machine-readable, schema-stable
payload on stdout.  Argument errors exit with status 2 and a one-line
message on stderr; infeasible computations (budget exhausted, no path
applies) exit with status 3.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.api.measures import Budget, available_measures, measure
from repro.api.registry import (
    SystemSpec,
    available_constructions,
    build,
    get_entry,
    spec_of,
)
from repro.api.scenarios import available_scenarios
from repro.api.workloads import WorkloadSpec, run
from repro.core.floats import is_zero
from repro.exceptions import (
    ComputationError,
    ConstructionError,
    InvalidParameterError,
    ReproError,
)

if TYPE_CHECKING:
    from repro.api.membership import MembershipSpec
    from repro.simulation.traces import TraceScenario

__all__ = ["main"]

#: Construction parameters the CLI understands; forwarded to the registry,
#: which rejects the ones a given construction does not take.
_PARAM_FLAGS = ("n", "side", "b", "k", "l", "q", "depth")


def _add_param_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("construction parameters")
    for flag in _PARAM_FLAGS:
        group.add_argument(f"--{flag}", type=int, default=None)
    group.add_argument(
        "--rows",
        type=str,
        default=None,
        help="crumbling-wall row widths, comma separated (e.g. 3,4,5)",
    )


def _collect_params(args: argparse.Namespace) -> dict:
    params = {
        flag: getattr(args, flag)
        for flag in _PARAM_FLAGS
        if getattr(args, flag) is not None
    }
    if getattr(args, "rows", None) is not None:
        try:
            params["rows"] = [int(part) for part in args.rows.split(",") if part]
        except ValueError:
            raise InvalidParameterError(
                f"--rows must be comma-separated integers, got {args.rows!r}"
            ) from None
    return params


def _budget_from(args: argparse.Namespace) -> Budget:
    kwargs = {}
    if getattr(args, "trials", None) is not None:
        kwargs["trials"] = args.trials
    if getattr(args, "num_samples", None) is not None:
        kwargs["num_samples"] = args.num_samples
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    return Budget(**kwargs)


def _emit(payload: Any, as_json: bool, human: Callable[[Any], None]) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=False))
    else:
        human(payload)


# ----------------------------------------------------------------------
# Commands.
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    payload = {
        "constructions": {
            name: {
                "summary": get_entry(name).summary,
                "masking": get_entry(name).masking,
                "params": [
                    {
                        "name": spec.name,
                        "required": spec.required,
                        "doc": spec.doc,
                    }
                    for spec in get_entry(name).params
                ],
            }
            for name in available_constructions()
        },
        "measures": available_measures(),
        "scenarios": available_scenarios(),
    }

    def human(data: Any) -> None:
        print("constructions:")
        for name, info in data["constructions"].items():
            required = ", ".join(
                p["name"] + ("" if p["required"] else "?") for p in info["params"]
            )
            print(f"  {name:15s} ({required:18s}) {info['summary']}")
        print("\nmeasures:")
        for name, doc in data["measures"].items():
            print(f"  {name:15s} {doc}")
        print("\nscenarios:")
        for name, doc in data["scenarios"].items():
            print(f"  {name:15s} {doc}")

    _emit(payload, args.json, human)
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    result = measure(
        args.construction,
        args.measure,
        method=args.method,
        p=args.p,
        budget=_budget_from(args),
        **_collect_params(args),
    )
    payload = result.to_dict()

    def human(data: Any) -> None:
        if data["error_bound"] is None:
            bound = "  (bound only)"
        elif is_zero(data["error_bound"]):
            bound = ""
        else:
            bound = f"  ± {data['error_bound']:.3g}"
        at_p = f" at p={data['p']}" if "p" in data else ""
        print(
            f"{data['system']}  (n={data['n']})\n"
            f"  {data['measure']}{at_p} = {data['value']:.9g}{bound}\n"
            f"  via {data['method_used']} (requested {data['method_requested']})"
        )

    _emit(payload, args.json, human)
    return 0


def _load_trace(path: str) -> "TraceScenario":
    """Load a ``--trace`` JSON file into a TraceScenario."""
    from pathlib import Path

    from repro.simulation.traces import TraceScenario

    trace_path = Path(path)
    try:
        records = json.loads(trace_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise InvalidParameterError(f"cannot read trace file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"trace file {path!r} is not valid JSON: {exc}") from None
    if not isinstance(records, list):
        raise InvalidParameterError(
            f"trace file {path!r} must hold a JSON array of "
            '{"t": <time>, "op": "read"|"write"} records'
        )
    try:
        return TraceScenario.from_records(trace_path.stem, records)
    except ReproError as exc:
        raise InvalidParameterError(f"trace file {path!r}: {exc}") from None


def _load_membership(raw: str) -> "MembershipSpec":
    """Parse a ``--membership`` JSON payload (inline or ``@file``)."""
    from pathlib import Path

    from repro.api.membership import MembershipSpec

    text = raw
    if raw.startswith("@"):
        try:
            text = Path(raw[1:]).read_text(encoding="utf-8")
        except OSError as exc:
            raise InvalidParameterError(
                f"cannot read membership file {raw[1:]!r}: {exc}"
            ) from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(
            f"--membership is not valid JSON: {exc}"
        ) from None
    return MembershipSpec.from_dict(payload)


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = args.scenario
    if args.trace is not None:
        if scenario is not None:
            raise InvalidParameterError("--trace and --scenario are mutually exclusive")
        scenario = _load_trace(args.trace)
    membership = None
    if args.membership is not None:
        membership = _load_membership(args.membership)
    spec = WorkloadSpec(
        system=args.construction,
        params=_collect_params(args),
        b=args.protocol_b,
        scenario=scenario,
        operations=args.ops,
        clients=args.clients,
        write_fraction=args.write_fraction,
        strategy=args.strategy,
        seed=args.seed,
        max_attempts=args.max_attempts,
        num_samples=args.num_samples if args.num_samples is not None else 256,
        membership=membership,
    )
    report = run(spec, engine=args.engine)
    payload = report.to_dict()

    def human(data: Any) -> None:
        print(f"{data['system']}  (n={data['n']}, b={data['b']})")
        print(
            f"  engine={data['engine']}  scenario={data['scenario']}  "
            f"strategy={data['strategy']}  seed={data['seed']}"
            + ("  [sampled quorums]" if data["sampled"] else "")
        )
        print(
            f"  operations={data['operations']}  availability={data['availability']:.4f}  "
            f"reads={data['successful_reads']}  writes={data['successful_writes']}  "
            f"failed={data['failed_operations']}"
        )
        print(
            f"  consistent={data['consistent']}  violations={data['consistency_violations']}  "
            f"stale={data['stale_reads']}"
        )
        print(
            f"  empirical load={data['empirical_load']:.4f}  "
            f"busiest={data['busiest_server']}"
        )
        if data["latency_p50"] is not None:
            print(
                f"  latency mean={data['latency_mean']:.3f}  p50={data['latency_p50']:.3f}  "
                f"p90={data['latency_p90']:.3f}  p99={data['latency_p99']:.3f}  "
                f"timeouts={data['timeouts']}"
            )
        if data["epochs"]:
            print("  epochs:")
            for epoch in data["epochs"]:
                print(
                    f"    e{epoch['epoch']}: {epoch['system']}  n={epoch['n']}  "
                    f"b={epoch['b']}  policy={epoch['policy']}  "
                    f"ops={epoch['operations']}  "
                    f"load={epoch['empirical_load']:.4f}"
                )

    _emit(payload, args.json, human)
    return 0


def _service_spec(args: argparse.Namespace) -> SystemSpec:
    """Resolve ``--spec`` JSON or ``--construction`` + params into a spec."""
    raw = getattr(args, "spec", None)
    if raw is not None:
        if getattr(args, "construction", None) is not None:
            raise InvalidParameterError("--spec and --construction are mutually exclusive")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(f"--spec is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or "construction" not in payload:
            raise InvalidParameterError(
                '--spec must be {"construction": <name>, "params": {...}}'
            )
        return SystemSpec(
            construction=str(payload["construction"]),
            params=dict(payload.get("params", {})),
        )
    if getattr(args, "construction", None) is None:
        raise InvalidParameterError("either --spec or --construction is required")
    # Canonicalise through the registry so the spec round-trips JSON-stably.
    return spec_of(build(args.construction, **_collect_params(args)))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    spec = _service_spec(args)
    if args.index is not None:
        # Single-replica mode: the process the supervisor (or an operator)
        # spawns once per server.  Serves until terminated.
        from repro.service.replica import ReplicaConfig, run_replica

        config = ReplicaConfig(
            spec=spec,
            index=args.index,
            host=args.host,
            port=args.port,
            byzantine_behaviour=args.byzantine_behaviour,
            seed=args.seed,
            ready_file=args.ready_file,
            data_dir=args.data_dir,
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
        )
        try:
            asyncio.run(run_replica(config))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return 0

    # Supervisor mode: one OS process per replica, addresses published
    # through the cluster file, runs until SIGTERM/SIGINT.
    import tempfile

    from repro.service.harness import ClusterSpec, ServiceCluster, run_supervisor

    cluster_spec = ClusterSpec(
        spec=spec,
        b=args.protocol_b,
        byzantine=args.byzantine,
        byzantine_behaviour=args.byzantine_behaviour or "forge-on-read",
        host=args.host,
        seed=args.seed,
        allow_overload=args.allow_overload,
        data_root=args.data_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
    )
    run_dir = args.run_dir or tempfile.mkdtemp(prefix="repro-cluster-")
    cluster = ServiceCluster(cluster_spec, run_dir)
    cluster.start(timeout=args.ready_timeout)
    for handle in cluster.replicas:
        role = f"  [{handle.byzantine}]" if handle.byzantine else ""
        print(
            f"replica {handle.index}: {handle.host}:{handle.port}"
            f"  server={handle.server_id!r}{role}",
            flush=True,
        )
    if args.cluster_file:
        print(f"cluster file: {args.cluster_file}", flush=True)
    try:
        asyncio.run(run_supervisor(cluster, cluster_file=args.cluster_file))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        cluster.terminate()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.service.harness import discover_initial_pair, load_cluster_file, run_load
    from repro.simulation.client import RetryPolicy
    from repro.simulation.history import dump_history_jsonl

    spec, b, replicas = load_cluster_file(args.cluster)
    system = build(spec)
    endpoints = {
        system.universe.element_at(int(descriptor["index"])): (
            str(descriptor["host"]),
            int(descriptor["port"]),
        )
        for descriptor in replicas
    }
    policy = RetryPolicy(
        max_attempts=args.max_attempts, request_timeout=args.timeout
    )
    protocol_b = b if args.protocol_b is None else args.protocol_b
    initial_pair = None
    if args.initial_from_cluster:
        # Server-side state discovery (b+1-vouched STATUS pairs): the durable
        # replacement for chaining a previous run's final_pair by hand.
        initial_pair = asyncio.run(
            discover_initial_pair(replicas, b=protocol_b, timeout=args.timeout)
        )
    result = asyncio.run(
        run_load(
            system,
            endpoints,
            b=protocol_b,
            operations=args.ops,
            clients=args.clients,
            write_fraction=args.write_fraction,
            mode=args.mode,
            rate=args.rate,
            policy=policy,
            strategy=args.strategy,
            seed=args.seed,
            replica_endpoints=replicas,
            initial_pair=initial_pair,
        )
    )
    payload = result.report(strategy_label=args.strategy or "uniform")
    if args.conformance:
        from repro.analysis.conformance import service_conformance

        payload["conformance"] = service_conformance(result).to_dict()
    if args.history is not None:
        dump_history_jsonl(result.records, args.history)
    if args.output is not None:
        Path(args.output).write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )

    def human(data: Any) -> None:
        print(f"{data['system']}  (n={data['n']}, b={data['b']})  engine=service")
        print(
            f"  operations={data['operations']}  clients={data['service']['clients']}  "
            f"availability={data['availability']:.4f}  duration={data['duration']:.2f}s"
        )
        print(
            f"  consistent={data['consistent']}  violations={data['consistency_violations']}  "
            f"stale={data['stale_reads']}  timeouts={data['timeouts']}"
        )
        print(
            f"  empirical load={data['empirical_load']:.4f}  "
            f"busiest={data['busiest_server']}"
        )
        if data["latency_p50"] is not None:
            print(
                f"  latency mean={data['latency_mean'] * 1e3:.2f}ms  "
                f"p50={data['latency_p50'] * 1e3:.2f}ms  "
                f"p90={data['latency_p90'] * 1e3:.2f}ms  "
                f"p99={data['latency_p99'] * 1e3:.2f}ms"
            )
        if "conformance" in data:
            verdict = "ok" if data["conformance"]["ok"] else "VIOLATED"
            print(f"  conformance: {verdict}")
            for check in data["conformance"]["checks"]:
                print(
                    f"    {check['metric']:22s} observed={check['observed']:.6g} "
                    f"{check['direction']} {check['bound']:.6g} "
                    f"(slack {check['slack']:.3g}) {'ok' if check['ok'] else 'FAIL'}"
                )

    _emit(payload, args.json, human)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(list(args.lint_args))


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import section8_comparison

    import numpy as np

    profiles = section8_comparison(
        n=args.n,
        p=args.p,
        rng=np.random.default_rng(args.seed),
        include_baselines=args.include_baselines,
    )
    payload = [
        {
            "system": profile.name,
            "n": profile.n,
            "b": profile.b,
            "f": profile.f,
            "load": profile.load,
            "fp": profile.crash_probability,
            "fp_kind": profile.crash_probability_kind,
        }
        for profile in profiles
    ]

    def human(rows: Any) -> None:
        print(f"Section 8 comparison at n≈{args.n}, p={args.p}")
        print(f"{'system':28s} {'n':>6s} {'b':>4s} {'f':>4s} {'L(Q)':>8s} {'Fp':>12s}  kind")
        for row in rows:
            print(
                f"{row['system']:28s} {row['n']:6d} {row['b']:4d} {row['f']:4d} "
                f"{row['load']:8.4f} {row['fp']:12.6g}  {row['fp_kind']}"
            )

    _emit(payload, args.json, human)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    budget = _budget_from(args)
    shared = _collect_params(args)
    rows = []
    for name in args.constructions:
        entry = get_entry(name)
        known = {spec.name for spec in entry.params}
        params = {
            key: value
            for key, value in shared.items()
            if key in known or (key == "n" and entry.accepts_n_alias)
        }
        system = build(name, **params)  # one build shared by every measure
        row: dict[str, object] = {"construction": name}
        load = measure(system, "load", method=args.method, budget=budget)
        row["system"] = load.system
        row["n"] = load.n
        row["load"] = load.to_dict()
        if args.p is not None:
            row["fp"] = measure(
                system, "fp", method=args.method, p=args.p, budget=budget
            ).to_dict()
        row["masking"] = measure(system, "masking", budget=budget).value
        row["resilience"] = measure(system, "resilience", budget=budget).value
        rows.append(row)

    def human(data: Any) -> None:
        has_fp = args.p is not None
        header = f"{'construction':15s} {'n':>6s} {'b':>4s} {'f':>4s} {'L(Q)':>9s}"
        if has_fp:
            header += f" {'Fp':>12s}"
        print(header + "  method")
        for row in data:
            line = (
                f"{row['construction']:15s} {row['n']:6d} {int(row['masking']):4d} "
                f"{int(row['resilience']):4d} {row['load']['value']:9.4f}"
            )
            methods = row["load"]["method_used"]
            if has_fp:
                line += f" {row['fp']['value']:12.6g}"
                methods += "/" + row["fp"]["method_used"]
            print(line + f"  {methods}")

    _emit(rows, args.json, human)
    return 0


# ----------------------------------------------------------------------
# Parser.
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Masking quorum systems (Malkhi, Reiter & Wool, PODC 1997): "
            "build constructions, compute the paper's measures, run workloads."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="show the construction registry, measures and scenarios"
    )
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(handler=_cmd_list)

    measure_parser = commands.add_parser(
        "measure", help="compute one measure of one construction"
    )
    measure_parser.add_argument("construction", help="registry name (see 'list')")
    measure_parser.add_argument(
        "--measure",
        default="load",
        choices=sorted(available_measures()),
        help="which measure (default: load)",
    )
    measure_parser.add_argument(
        "--method",
        default="auto",
        choices=("auto", "exact", "analytic", "sampled"),
        help="computation path (default: auto policy)",
    )
    measure_parser.add_argument("--p", type=float, default=None, help="crash probability (fp/availability)")
    measure_parser.add_argument("--trials", type=int, default=None, help="Monte-Carlo trials budget")
    measure_parser.add_argument("--num-samples", dest="num_samples", type=int, default=None)
    measure_parser.add_argument("--seed", type=int, default=None)
    measure_parser.add_argument("--json", action="store_true")
    _add_param_flags(measure_parser)
    measure_parser.set_defaults(handler=_cmd_measure)

    run_parser = commands.add_parser(
        "run", help="run a workload experiment and print its report"
    )
    run_parser.add_argument("--construction", "-c", required=True, help="registry name")
    run_parser.add_argument(
        "--scenario", default=None, help="catalogue scenario name (default: fault-free)"
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        help=(
            "JSON trace file of open-loop arrivals "
            '([{"t": <time>, "op": "read"|"write"}, ...]); replayed on the '
            "event engine (mutually exclusive with --scenario)"
        ),
    )
    run_parser.add_argument(
        "--membership",
        default=None,
        help=(
            "membership reconfiguration spec as JSON (or @file): "
            '{"events": [{"kind": "sever", "count": 9}, ...], '
            '"fractions": null, "policy": "reweight"}; mutually exclusive '
            "with --scenario (named reconfig-* scenarios carry their own)"
        ),
    )
    run_parser.add_argument(
        "--engine", default="auto", choices=("auto", "vectorized", "event")
    )
    run_parser.add_argument("--ops", type=int, default=200, help="total operations")
    run_parser.add_argument("--clients", type=int, default=4)
    run_parser.add_argument(
        "--write-fraction", dest="write_fraction", type=float, default=0.5
    )
    run_parser.add_argument(
        "--strategy", default=None, choices=(None, "uniform", "optimal")
    )
    run_parser.add_argument(
        "--protocol-b",
        dest="protocol_b",
        type=int,
        default=None,
        help="masking parameter for the protocol (default: the system's bound)",
    )
    run_parser.add_argument("--max-attempts", dest="max_attempts", type=int, default=10)
    run_parser.add_argument("--num-samples", dest="num_samples", type=int, default=None)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--json", action="store_true")
    _add_param_flags(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    serve_parser = commands.add_parser(
        "serve",
        help=(
            "run the networked replica service: a whole cluster of replica "
            "processes (supervisor mode) or one replica (--index)"
        ),
    )
    serve_parser.add_argument(
        "--construction", "-c", default=None, help="registry name"
    )
    serve_parser.add_argument(
        "--spec",
        default=None,
        help='system spec as JSON: {"construction": <name>, "params": {...}}',
    )
    serve_parser.add_argument(
        "--index",
        type=int,
        default=None,
        help="serve exactly one replica, this universe index (single mode)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0, help="listen port (single mode; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--ready-file",
        dest="ready_file",
        default=None,
        help="publish the bound address here once listening (single mode)",
    )
    serve_parser.add_argument(
        "--cluster-file",
        dest="cluster_file",
        default=None,
        help="write the cluster description loadgen consumes (supervisor mode)",
    )
    serve_parser.add_argument(
        "--run-dir",
        dest="run_dir",
        default=None,
        help="directory for replica ready files (default: a temp dir)",
    )
    serve_parser.add_argument(
        "--protocol-b",
        dest="protocol_b",
        type=int,
        default=None,
        help="masking parameter (default: the system's bound)",
    )
    serve_parser.add_argument(
        "--byzantine",
        type=int,
        default=0,
        help="how many replicas serve Byzantine behaviour (supervisor mode)",
    )
    serve_parser.add_argument(
        "--byzantine-behaviour",
        dest="byzantine_behaviour",
        default=None,
        help=(
            "Byzantine behaviour: fabricate-timestamp, forge-on-read, stale, "
            "random-value or drop-writes (single mode: make this replica lie)"
        ),
    )
    serve_parser.add_argument(
        "--allow-overload",
        dest="allow_overload",
        action="store_true",
        help="permit more Byzantine replicas than b (negative tests)",
    )
    serve_parser.add_argument(
        "--data-dir",
        dest="data_dir",
        default=None,
        help=(
            "durable state directory: the replica's own (single mode) or the "
            "root for per-replica replica-<i> subdirectories (supervisor "
            "mode); omitted = memory-only replicas"
        ),
    )
    serve_parser.add_argument(
        "--fsync",
        default="always",
        help=(
            "write-ahead-log fsync policy: always, interval[:N] or never "
            "(requires --data-dir; default: always)"
        ),
    )
    serve_parser.add_argument(
        "--snapshot-every",
        dest="snapshot_every",
        type=int,
        default=1024,
        help=(
            "journalled writes between snapshot+log-compaction cycles "
            "(0 disables compaction; requires --data-dir)"
        ),
    )
    serve_parser.add_argument(
        "--ready-timeout",
        dest="ready_timeout",
        type=float,
        default=None,
        help=(
            "seconds to wait for every replica to bind (supervisor mode; "
            "default scales with the replica count)"
        ),
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    _add_param_flags(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    loadgen_parser = commands.add_parser(
        "loadgen",
        help="drive concurrent live clients against a running cluster",
    )
    loadgen_parser.add_argument(
        "--cluster",
        required=True,
        help="cluster file written by 'serve --cluster-file'",
    )
    loadgen_parser.add_argument("--ops", type=int, default=1000, help="total operations")
    loadgen_parser.add_argument(
        "--clients", type=int, default=32, help="concurrent client coroutines"
    )
    loadgen_parser.add_argument(
        "--write-fraction", dest="write_fraction", type=float, default=0.5
    )
    loadgen_parser.add_argument(
        "--mode",
        default="closed",
        choices=("closed", "open"),
        help="closed loop (back-to-back) or open loop (diurnal arrivals)",
    )
    loadgen_parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="open-loop target throughput in ops/second (0 = no pacing)",
    )
    loadgen_parser.add_argument(
        "--strategy", default=None, choices=(None, "uniform", "optimal")
    )
    loadgen_parser.add_argument(
        "--protocol-b",
        dest="protocol_b",
        type=int,
        default=None,
        help="override the cluster file's masking parameter",
    )
    loadgen_parser.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        help="per-request timeout in seconds (RetryPolicy.request_timeout)",
    )
    loadgen_parser.add_argument("--max-attempts", dest="max_attempts", type=int, default=10)
    loadgen_parser.add_argument(
        "--initial-from-cluster",
        dest="initial_from_cluster",
        action="store_true",
        help=(
            "discover the register state the cluster already holds (b+1-"
            "vouched STATUS pairs) and hand it to the checker as the run's "
            "initial pair — for runs against a recovered durable cluster"
        ),
    )
    loadgen_parser.add_argument(
        "--conformance",
        action="store_true",
        help="run live-traffic conformance checks and embed the verdict",
    )
    loadgen_parser.add_argument(
        "--history",
        default=None,
        help="write the recorded history as JSON Lines (checker-replayable)",
    )
    loadgen_parser.add_argument(
        "--output", default=None, help="write the JSON report here as well"
    )
    loadgen_parser.add_argument("--seed", type=int, default=0)
    loadgen_parser.add_argument("--json", action="store_true")
    loadgen_parser.set_defaults(handler=_cmd_loadgen)

    lint_parser = commands.add_parser(
        "lint",
        help="run the AST invariant linter and strict typing gate (repro.lint)",
        add_help=False,
    )
    lint_parser.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint_parser.set_defaults(handler=_cmd_lint)

    table_parser = commands.add_parser(
        "table", help="the Section 8 comparison table at a given n and p"
    )
    table_parser.add_argument("--n", type=int, default=1024)
    table_parser.add_argument("--p", type=float, default=0.125)
    table_parser.add_argument("--include-baselines", action="store_true")
    table_parser.add_argument("--seed", type=int, default=0)
    table_parser.add_argument("--json", action="store_true")
    table_parser.set_defaults(handler=_cmd_table)

    compare_parser = commands.add_parser(
        "compare", help="compare several constructions at shared parameters"
    )
    compare_parser.add_argument(
        "constructions", nargs="+", help="registry names (see 'list')"
    )
    compare_parser.add_argument("--p", type=float, default=None)
    compare_parser.add_argument(
        "--method", default="auto", choices=("auto", "exact", "analytic", "sampled")
    )
    compare_parser.add_argument("--trials", type=int, default=None)
    compare_parser.add_argument("--num-samples", dest="num_samples", type=int, default=None)
    compare_parser.add_argument("--seed", type=int, default=None)
    compare_parser.add_argument("--json", action="store_true")
    _add_param_flags(compare_parser)
    compare_parser.set_defaults(handler=_cmd_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Hand the whole tail to the linter's own parser before argparse sees
        # it: nargs=REMAINDER does not reliably swallow leading option flags
        # (``lint --json`` would error at the top level otherwise).
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = _build_parser()
    args = parser.parse_args(arguments)
    try:
        return args.handler(args)
    except (InvalidParameterError, ConstructionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ComputationError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
