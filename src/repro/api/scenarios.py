"""Scenario catalogue: fault schedules by name, for specs and the CLI.

The simulation layer builds scenarios from explicit universes and RNGs
(:mod:`repro.simulation.scenarios`); the facade needs them *by name* so a
:class:`~repro.api.workloads.WorkloadSpec` stays declarative.  Each entry
here is a builder ``(universe, b, rng) -> WorkloadScenario | TimingScenario``
using the same representative shapes as
:func:`~repro.simulation.scenarios.scenario_suite` /
:func:`~repro.simulation.scenarios.timing_scenario_suite`.

Untimed names (``WorkloadScenario``) run on either engine; timed names
(``TimingScenario``) carry latency models and mid-run fault transitions, so
they force the event engine (``engine="auto"`` picks it).  Two further
kinds joined with the adversarial layer: :class:`AdaptiveScenario` entries
(``adaptive-*``) re-choose the fault set between rounds from observed load
and run on the vectorised engine, and :class:`TraceScenario` entries
(``diurnal``) replay open-loop arrival traces on the event engine.
"""

from __future__ import annotations

from collections.abc import Callable
from math import isqrt

import numpy as np

from repro.api.membership import MembershipSpec, ReconfigScenario
from repro.core.universe import Universe
from repro.exceptions import InvalidParameterError
from repro.simulation.adversary import (
    AdaptiveScenario,
    GreedyLoadAdversary,
    StaleReadAdversary,
)
from repro.simulation.faults import FaultInjector
from repro.simulation.scenarios import (
    TimingScenario,
    WorkloadScenario,
    _failure_domains,
    blast_radius_scenario,
    byzantine_scenario,
    churn_scenario,
    correlated_failure_scenario,
    crash_recover_scenario,
    crash_scenario,
    fault_free_scenario,
    flaky_links_scenario,
    partition_scenario,
    percolation_scenario,
    slow_server_scenario,
)
from repro.simulation.traces import TraceScenario

__all__ = ["available_scenarios", "build_scenario", "is_timed"]

#: Everything the catalogue can hand back: untimed workloads, timed/event
#: scenarios, adaptive adversaries, replayed traces and membership
#: reconfigurations.
AnyScenario = (
    WorkloadScenario
    | TimingScenario
    | AdaptiveScenario
    | TraceScenario
    | ReconfigScenario
)

Builder = Callable[[Universe, int, np.random.Generator], AnyScenario]


def _crash(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    """A deterministic static crash of the first quarter of the universe."""
    elements = universe.elements
    return crash_scenario(
        universe, elements[: max(1, universe.size // 4)], name="crash"
    )


def _iid_crash(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    injector = FaultInjector(universe, rng)
    return WorkloadScenario.from_fault_scenario(
        injector.independent_crashes(0.1), name="iid-crash"
    )


def _byzantine(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    if b < 1:
        raise InvalidParameterError(
            "the 'byzantine' scenario needs a masking parameter b >= 1"
        )
    injector = FaultInjector(universe, rng)
    byz = injector.exact(num_byzantine=b).byzantine
    return byzantine_scenario(universe, byz, model="fabricate", name="byzantine")


def _equivocate(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    if b < 1:
        raise InvalidParameterError(
            "the 'equivocate' scenario needs a masking parameter b >= 1"
        )
    injector = FaultInjector(universe, rng)
    byz = injector.exact(num_byzantine=b).byzantine
    return byzantine_scenario(universe, byz, model="equivocate", name="equivocate")


def _rack_failure(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    return correlated_failure_scenario(
        universe, _failure_domains(universe), [0], name="rack-failure"
    )


def _partition(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    elements = universe.elements
    return partition_scenario(
        universe, elements[: max(1, (3 * universe.size) // 4)], name="partition"
    )


def _churn(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    elements = universe.elements
    third = max(1, universe.size // 3)
    return churn_scenario(
        universe,
        [
            elements[:third],
            elements[third : 2 * third],
            elements[2 * third : 3 * third],
        ],
        name="churn",
    )


def _slow_servers(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    slow_count = max(1, universe.size // 10)
    slow_map = {server: 4.0 for server in universe.elements[:slow_count]}
    return slow_server_scenario(universe, slow_map)


def _flaky_links(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    return flaky_links_scenario()


def _crash_recover(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    elements = universe.elements
    return crash_recover_scenario(
        universe,
        elements[: max(1, universe.size // 4)],
        down_at=10.0,
        up_at=40.0,
    )


def _adaptive_load(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    return AdaptiveScenario(name="adaptive-load", policy=GreedyLoadAdversary(), rounds=8)


def _adaptive_stale(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    if b < 1:
        raise InvalidParameterError(
            "the 'adaptive-stale' scenario needs a masking parameter b >= 1"
        )
    return AdaptiveScenario(name="adaptive-stale", policy=StaleReadAdversary(), rounds=8)


def _require_square(universe: Universe, name: str) -> None:
    side = isqrt(universe.size)
    if side * side != universe.size or side < 2:
        raise InvalidParameterError(
            f"the {name!r} scenario embeds the universe into a percolation "
            f"lattice and needs a square n of side >= 2, got n={universe.size}"
        )


def _percolation(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    _require_square(universe, "percolation")
    return percolation_scenario(universe, p_closed=0.15, rng=rng, phases=8)


def _blast_radius(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    _require_square(universe, "blast-radius")
    return blast_radius_scenario(universe, rng=rng, radius=1, phases=6)


def _diurnal(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    return TraceScenario(name="diurnal", period=120.0, peak_ratio=4.0, skew=1.1)


def _reconfig_churn(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    """Sever a block of servers mid-run, then re-admit it: three epochs.

    On a square universe the severed block is exactly the outer ring
    (``n - (side-1)^2`` servers), so grid-family systems rebind to the
    ``side-1`` construction in the middle epoch; the re-join restores the
    original configuration.
    """
    n = universe.size
    side = isqrt(n)
    if side * side == n and side >= 3:
        count = n - (side - 1) ** 2
    else:
        count = max(1, n // 4)
    return ReconfigScenario(
        name="reconfig-churn",
        membership=MembershipSpec(
            events=(("sever", count), ("join", count)), policy="reweight"
        ),
    )


def _reconfig_growth(universe: Universe, b: int, rng: np.random.Generator) -> AnyScenario:
    """Grow the deployment twice mid-run: three epochs of fresh joins.

    On a square universe the joins step the side up by one each epoch
    (``side -> side+1 -> side+2``), so grid-family systems rebind to larger
    constructions with thresholds recomputed per epoch; the LP is re-solved
    at every epoch (``policy="resolve"``).
    """
    n = universe.size
    side = isqrt(n)
    if side * side == n and side >= 2:
        first = (side + 1) ** 2 - n
        second = (side + 2) ** 2 - (side + 1) ** 2
    else:
        first = second = max(1, n // 4)
    return ReconfigScenario(
        name="reconfig-growth",
        membership=MembershipSpec(
            events=(("join", first), ("join", second)), policy="resolve"
        ),
    )


#: name -> (builder, timed?, one-line description)
_CATALOGUE: dict[str, tuple[Builder, bool, str]] = {
    "fault-free": (lambda u, b, r: fault_free_scenario(), False, "no faults at all"),
    "crash": (_crash, False, "first quarter of the servers crashed throughout"),
    "iid-crash": (_iid_crash, False, "each server crashed independently (p = 0.1)"),
    "byzantine": (_byzantine, False, "b colluding liars vouching for one forged pair"),
    "equivocate": (_equivocate, False, "b liars split into two conflicting camps"),
    "rack-failure": (_rack_failure, False, "one whole failure domain down"),
    "partition": (_partition, False, "clients reach only 3/4 of the universe"),
    "churn": (_churn, False, "a different third of the servers down per phase"),
    "slow-servers": (_slow_servers, True, "10% of servers 4x slower (timed)"),
    "flaky-links": (_flaky_links, True, "5% loss / 2% duplication links (timed)"),
    "crash-recover": (_crash_recover, True, "mid-run crash at t=10, recovery at t=40 (timed)"),
    "adaptive-load": (
        _adaptive_load,
        False,
        "adaptive adversary crashing the b busiest servers each round",
    ),
    "adaptive-stale": (
        _adaptive_stale,
        False,
        "adaptive adversary corrupting the b busiest servers into liars",
    ),
    "percolation": (
        _percolation,
        False,
        "correlated crashes from site percolation on the lattice (p = 0.15)",
    ),
    "blast-radius": (
        _blast_radius,
        False,
        "a random lattice neighbourhood (rack/zone) down per phase",
    ),
    "diurnal": (
        _diurnal,
        True,
        "open-loop diurnal arrivals with hot-quorum skew (timed)",
    ),
    "reconfig-churn": (
        _reconfig_churn,
        False,
        "sever a server block mid-run, then re-admit it (3 membership epochs)",
    ),
    "reconfig-growth": (
        _reconfig_growth,
        False,
        "grow the membership twice mid-run, re-solving the LP per epoch",
    ),
}


def available_scenarios() -> dict[str, str]:
    """Return scenario names with one-line descriptions (timed ones marked)."""
    return {name: doc for name, (_, _, doc) in sorted(_CATALOGUE.items())}


def is_timed(scenario: str | AnyScenario) -> bool:
    """Whether a scenario (name or object) needs the event engine's clock."""
    if isinstance(scenario, str):
        if scenario not in _CATALOGUE:
            raise InvalidParameterError(
                f"unknown scenario {scenario!r}; available: "
                f"{', '.join(sorted(_CATALOGUE))}"
            )
        return _CATALOGUE[scenario][1]
    return isinstance(scenario, (TimingScenario, TraceScenario))  # ReconfigScenario runs on either engine


def build_scenario(
    name: str, universe: Universe, *, b: int, rng: np.random.Generator
) -> AnyScenario:
    """Instantiate a catalogue scenario over the given universe.

    Raises
    ------
    InvalidParameterError
        For unknown names, or when the scenario needs ``b >= 1`` (the
        Byzantine ones) and the deployment masks nothing.
    """
    if name not in _CATALOGUE:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(_CATALOGUE))}"
        )
    builder, _, _ = _CATALOGUE[name]
    return builder(universe, b, rng)
