"""``repro.api`` — the library's single public front door.

One spec-driven surface over everything the reproduction can do:

* **registry** (:mod:`repro.api.registry`) — every construction under a
  string name with a typed parameter spec; ``build("mgrid", n=49, b=3)``,
  round-trippable :class:`SystemSpec`;
* **measures** (:mod:`repro.api.measures`) — ``measure(system, "load",
  method="auto")`` dispatching between the exact, analytic and sampled
  paths under an explicit :class:`Budget`, returning a
  :class:`MeasureResult` that records which path ran;
* **workloads** (:mod:`repro.api.workloads`) — one :class:`WorkloadSpec`
  accepted by ``run(spec, engine="auto")`` over both workload engines,
  normalised into a JSON-stable :class:`WorkloadReport`;
* **scenarios** (:mod:`repro.api.scenarios`) — the fault-schedule
  catalogue by name;
* **membership** (:mod:`repro.api.membership`) — :class:`MembershipSpec`,
  the JSON-stable description of a membership-reconfiguration timeline
  (epochs of join/sever events), runnable via ``WorkloadSpec(membership=...)``
  or the named ``reconfig-*`` catalogue scenarios;
* **cli** (:mod:`repro.api.cli`) — ``python -m repro
  measure|run|table|compare|list [--json]``.

The older entry points (``exact_load``, ``analytic_*``, ``run_workload``,
``run_event_workload``, direct construction imports) remain supported;
they are what the facade dispatches to.  See ``docs/api.md`` for the tour.

>>> from repro import api
>>> api.measure("grid", "load", n=25).value
0.36
>>> api.run(api.WorkloadSpec(system="grid", params={"n": 25},
...                          operations=40, seed=3)).consistent
True
"""

from repro.api.membership import MembershipSpec, ReconfigScenario
from repro.api.measures import (
    Budget,
    MeasureResult,
    available_measures,
    measure,
)
from repro.api.registry import (
    ConstructionEntry,
    ParamSpec,
    SystemSpec,
    available_constructions,
    build,
    get_entry,
    register,
    spec_of,
)
from repro.api.scenarios import available_scenarios, build_scenario, is_timed
from repro.api.workloads import WorkloadReport, WorkloadSpec, run

__all__ = [
    "Budget",
    "ConstructionEntry",
    "MeasureResult",
    "MembershipSpec",
    "ParamSpec",
    "ReconfigScenario",
    "SystemSpec",
    "WorkloadReport",
    "WorkloadSpec",
    "available_constructions",
    "available_measures",
    "available_scenarios",
    "build",
    "build_scenario",
    "get_entry",
    "is_timed",
    "measure",
    "register",
    "run",
    "spec_of",
]
