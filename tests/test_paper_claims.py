"""Integration tests pinning the paper's concrete numerical claims.

Each test quotes a specific statement from the paper (a table entry, a
worked example, or an in-text calculation) and checks the library reproduces
it.  These are the fast counterparts of the benchmark harness in
``benchmarks/``; the benchmarks re-derive the same rows with timings and the
full parameter sweeps.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    BoostedFPP,
    MGrid,
    MPath,
    RecursiveThreshold,
    load_lower_bound,
    masking_threshold,
)


class TestSection5Claims:
    def test_mgrid_masks_up_to_half_sqrt_n(self):
        # Proposition 5.1: b <= (sqrt(n)-1)/2; at n = 49 that is b = 3.
        MGrid(7, 3)
        with pytest.raises(Exception):
            MGrid(7, 4)

    def test_mgrid_load_within_sqrt2_of_optimal(self):
        # Remark after Proposition 5.2, evaluated at b ~ sqrt(n)/2 where the
        # construction is pushed hardest (integrality makes it slightly
        # worse than the asymptotic sqrt(2) factor on small grids).
        system = MGrid(16, 7)
        ratio = system.load() / load_lower_bound(system.n, 7)
        assert ratio <= 1.5

    def test_rt43_combinatorics_from_the_text(self):
        # "for the whole system we get c = n^0.79, IS = MT = sqrt(n)".
        for depth in (2, 3, 4):
            system = RecursiveThreshold(4, 3, depth)
            n = system.n
            assert system.min_quorum_size() == pytest.approx(n ** math.log(3, 4), rel=1e-9)
            assert system.min_intersection_size() == int(math.isqrt(n))
            assert system.min_transversal_size() == int(math.isqrt(n))

    def test_rt43_masks_half_sqrt_n(self):
        # b = (sqrt(n) - 1)/2 for RT(4,3).
        system = RecursiveThreshold(4, 3, 4)
        assert system.masking_bound() == (math.isqrt(system.n) - 1) // 2

    def test_rt43_block_polynomial_and_critical_point(self):
        # "a direct calculation shows that g(p) = 6p^2 - 8p^3 + 3p^4 and
        # pc = 0.2324".
        system = RecursiveThreshold(4, 3, 5)
        assert system.block_crash_function(0.3) == pytest.approx(
            6 * 0.09 - 8 * 0.027 + 3 * 0.0081, abs=1e-12
        )
        assert system.critical_probability() == pytest.approx(0.2324, abs=5e-4)

    def test_rt43_fast_decay_below_one_sixth(self):
        # "when p < 1/6 ... Fp(RT(4,3)) < (6p)^sqrt(n)".
        p = 0.1
        for depth in (2, 3, 4, 5):
            system = RecursiveThreshold(4, 3, depth)
            assert system.crash_probability(p) < (6 * p) ** math.isqrt(system.n)


class TestSection6Claims:
    def test_proposition_6_1_parameters(self):
        # n = (4b+1)(q^2+q+1), c = (3b+1)(q+1), IS = 2b+1, MT = (b+1)(q+1).
        for q, b in [(2, 1), (3, 4), (4, 3)]:
            system = BoostedFPP(q, b)
            assert system.n == (4 * b + 1) * (q * q + q + 1)
            assert system.min_quorum_size() == (3 * b + 1) * (q + 1)
            assert system.min_intersection_size() == 2 * b + 1
            assert system.min_transversal_size() == (b + 1) * (q + 1)
            assert system.masking_bound() == b

    def test_proposition_6_2_load_about_3_over_4q(self):
        for q in (3, 5, 7):
            system = BoostedFPP(q, 5)
            assert system.load() == pytest.approx(3 / (4 * q), rel=0.2)

    def test_scaling_policy_1_masks_more_at_constant_load(self):
        # Section 6, policy 1: "Fix q and increase b; then the system can
        # mask more failures when new servers are added, however the load on
        # the servers does not decrease."  The masking exponent
        # log_n(b) climbs towards the a/(a+2) -> 1 regime the paper derives.
        systems = [BoostedFPP(3, b) for b in (3, 27, 243)]
        masking = [system.masking_bound() for system in systems]
        loads = [system.load() for system in systems]
        exponents = [
            math.log(system.masking_bound()) / math.log(system.n) for system in systems
        ]
        assert masking == sorted(masking)
        assert max(loads) - min(loads) < 0.03
        assert exponents == sorted(exponents)


class TestSection8WorkedExample:
    """The n ~ 1024, L ~ 1/4, p = 1/8 comparison at the end of the paper."""

    P = 0.125

    def test_mgrid_row(self):
        # "an M-Grid system can tolerate b = 15 Byzantine failures and up to
        # f = 28 benign failures, but has a failure probability Fp >= 0.638".
        system = MGrid(32, 15)
        assert system.n == 1024
        assert system.masking_bound() >= 15
        assert system.min_transversal_size() - 1 == 28
        assert system.load() == pytest.approx(0.25, abs=0.02)
        assert system.crash_probability_lower_bound(self.P) == pytest.approx(0.638, abs=0.01)

    def test_boostfpp_row(self):
        # "a boostFPP system (n = 1001, q = 3) can tolerate b = 19, up to
        # f = 79 benign failures ... Fp <= 0.372".
        system = BoostedFPP(3, 19)
        assert system.n == 1001
        assert system.masking_bound() == 19
        assert system.min_transversal_size() - 1 == 79
        assert system.load() == pytest.approx(0.25, abs=0.02)
        assert system.crash_probability_chernoff_bound(self.P) == pytest.approx(0.372, abs=0.003)
        # The tighter composed estimate is consistent with (well below) it.
        assert system.crash_probability(self.P) <= 0.372

    def test_mpath_row(self):
        # "The M-Path construction, with 4 LR and 4 TB paths per quorum, has
        # b = 7 here, and can tolerate up to f ~ 29 benign failures, but has
        # a good crash probability: Fp <= 0.001".
        system = MPath(32, 7)
        assert system.k == 4
        assert system.masking_bound() >= 7
        # Integrality conventions put f at 28 (the paper rounds to 29).
        assert system.min_transversal_size() - 1 in (28, 29)
        assert system.load() == pytest.approx(0.25, abs=0.02)
        assert system.crash_probability_upper_bound(self.P, p_prime=1 / 7) <= 0.001
        assert system.crash_probability_upper_bound(self.P) <= 0.001

    def test_rt_row(self):
        # "the RT(4,3) construction, with depth h = 5, is the best, with
        # b = 15, f = 31 and an excellent failure probability Fp <= 0.0001".
        system = RecursiveThreshold(4, 3, 5)
        assert system.n == 1024
        assert system.masking_bound() == 15
        assert system.min_transversal_size() - 1 == 31
        assert system.load() == pytest.approx(0.24, abs=0.02)
        assert system.crash_probability(self.P) <= 0.0001

    def test_threshold_cannot_reach_load_one_quarter(self):
        # Section 8: "Threshold suffers in load" — its load never drops
        # below 1/2 no matter the masking level.
        for b in (1, 15, 100):
            assert masking_threshold(1024, b).load() >= 0.5


class TestTradeoffClaim:
    def test_f_at_most_n_times_load(self):
        # "Since necessarily f <= c(Q), Theorem 4.1 implies that f <= n L(Q)".
        systems = [
            MGrid(32, 15),
            BoostedFPP(3, 19),
            MPath(32, 7),
            RecursiveThreshold(4, 3, 5),
            masking_threshold(1024, 255),
        ]
        for system in systems:
            resilience = system.min_transversal_size() - 1
            assert resilience <= system.n * system.load() + 1e-9
