"""Reconfiguration workloads: epoch drivers, boundary checker, conformance.

The acceptance criteria of the dynamic-membership tentpole, pinned as tests:

* a workload spanning **three membership epochs** passes per-epoch
  conformance — the ``L(Q)`` LP lower bound and the restricted-strategy
  envelope hold against each epoch's own closed forms
  (:func:`repro.analysis.conformance.reconfig_conformance`);
* the **epoch-extended history checker** reports zero violations at ``<= b``
  faults per epoch, and injected boundary violations (a stale read from an
  evicted epoch, a write acknowledged by a severed server) are each flagged
  by the right counter;
* both vectorised **modes agree bit for bit** per seed, and the new
  ``reconfig-*`` catalogue scenarios are seed-deterministic on both engines
  through the facade;
* :class:`repro.api.membership.MembershipSpec` round-trips through JSON.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro import MGrid, api
from repro.analysis import reconfig_conformance
from repro.core import Membership, plan_events
from repro.core.membership import severed_between
from repro.exceptions import InvalidParameterError, SimulationError
from repro.simulation import (
    REOPTIMISE_POLICIES,
    MembershipTimeline,
    check_register_history,
    reoptimise_strategy,
    run_reconfig_event_workload,
    run_reconfig_workload,
)

SEED = 11


def _churn_timeline(side: int = 5) -> tuple[MGrid, MembershipTimeline]:
    """MGrid(side, 1) severing its outer ring, then re-admitting it."""
    system = MGrid(side, 1)
    ring = side * side - (side - 1) ** 2
    events = plan_events(system.universe, [("sever", ring), ("join", ring)])
    membership = Membership(system.universe, events)
    return system, MembershipTimeline(membership=membership)


class TestTimeline:
    def test_fractions_default_to_equal_split(self):
        _, timeline = _churn_timeline()
        assert timeline.num_epochs == 3
        assert sum(timeline.fractions) == pytest.approx(1.0)
        assert timeline.operations_per_epoch(120) == (40, 40, 40)

    def test_every_epoch_gets_at_least_one_operation(self):
        system, _ = _churn_timeline()
        membership = Membership(
            system.universe, plan_events(system.universe, [("sever", 9), ("join", 9)])
        )
        timeline = MembershipTimeline(
            membership=membership, fractions=(0.98, 0.01, 0.01)
        )
        counts = timeline.operations_per_epoch(10)
        assert min(counts) >= 1
        assert sum(counts) == 10

    def test_bad_fractions_rejected(self):
        system, _ = _churn_timeline()
        membership = Membership(
            system.universe, plan_events(system.universe, [("sever", 9)])
        )
        with pytest.raises(SimulationError):
            MembershipTimeline(membership=membership, fractions=(0.5, 0.2))

    def test_too_few_operations_rejected(self):
        _, timeline = _churn_timeline()
        with pytest.raises(SimulationError):
            timeline.operations_per_epoch(2)


class TestVectorisedDriver:
    def test_three_epoch_run_is_clean(self):
        system, timeline = _churn_timeline()
        result = run_reconfig_workload(
            system,
            timeline=timeline,
            num_operations=120,
            rng=np.random.default_rng(SEED),
        )
        assert result.num_epochs == 3
        assert result.is_consistent
        assert result.consistency_violations == 0
        assert result.operations == 120
        # The middle epoch really rebound to the smaller construction.
        assert result.outcomes[1].n == 16
        assert "@e1" in result.outcomes[1].system_name
        # The re-join restored the original configuration.
        assert result.outcomes[2].n == 25
        assert result.outcomes[0].policy == "initial"

    @pytest.mark.parametrize("policy", REOPTIMISE_POLICIES)
    def test_per_epoch_conformance(self, policy):
        """Acceptance: >= 3 epochs, per-epoch L(Q) bound and envelope hold."""
        system, timeline = _churn_timeline()
        result = run_reconfig_workload(
            system,
            timeline=timeline,
            num_operations=150,
            policy=policy,
            rng=np.random.default_rng(SEED),
        )
        report = reconfig_conformance(result, system, timeline.membership)
        report.require()
        assert result.num_epochs >= 3
        # Every epoch contributes tagged checks; the LP lower bound is only
        # claimed for strategies supported on the epoch's own quorums.
        metrics = [check.metric for check in report.checks]
        for index in range(result.num_epochs):
            assert f"load-envelope[e{index}]" in metrics
            outcome = result.outcomes[index]
            if outcome.policy != "reweight":
                assert f"load-lp-lower-bound[e{index}]" in metrics
            else:
                assert f"load-lp-lower-bound[e{index}]" not in metrics

    def test_vectorised_and_sequential_agree_bit_for_bit(self):
        system, timeline = _churn_timeline()
        results = {}
        for mode in ("vectorised", "sequential"):
            results[mode] = run_reconfig_workload(
                system,
                timeline=timeline,
                num_operations=120,
                rng=np.random.default_rng(SEED),
                mode=mode,
            )
        vec, seq = results["vectorised"], results["sequential"]
        assert vec.to_dict() == seq.to_dict()
        for left, right in zip(vec.outcomes, seq.outcomes):
            assert left.result == right.result

    def test_reweight_falls_back_to_resolve_when_support_empties(self):
        system, timeline = _churn_timeline()
        result = run_reconfig_workload(
            system,
            timeline=timeline,
            num_operations=90,
            policy="reweight",
            strategy="uniform",
            rng=np.random.default_rng(SEED),
        )
        # No uniform MGrid(5,1) quorum survives inside the 4x4 survivors, so
        # epoch 1 re-solves; epoch 2's reweight of that strategy succeeds.
        assert result.outcomes[1].policy == "resolve"
        assert result.outcomes[2].policy == "reweight"

    def test_reoptimise_strategy_rejects_unknown_policy(self):
        system, timeline = _churn_timeline()
        with pytest.raises(SimulationError):
            reoptimise_strategy(
                system, timeline.membership, 1, policy="anneal"
            )


class TestEventDriver:
    def _run(self, seed: int = SEED):
        system, timeline = _churn_timeline()
        return run_reconfig_event_workload(
            system,
            timeline=timeline,
            num_clients=4,
            operations_per_client=18,
            rng=np.random.default_rng(seed),
            keep_history=True,
        )

    def test_stitched_history_is_clean(self):
        """Acceptance: zero violations at <= b faults per epoch."""
        result = self._run()
        assert result.check.ok
        assert result.check.cross_epoch_reads == 0
        assert result.check.foreign_quorum_members == 0
        assert result.num_epochs == 3
        assert len(result.windows) == 3
        assert result.windows[-1].end == float("inf")
        assert result.history, "keep_history must populate the records"

    def test_windows_carry_member_sets_and_epoch_b(self):
        result = self._run()
        members = [window.members for window in result.windows]
        assert len(members[1]) == 16
        assert members[0] == members[2]
        assert all(window.b >= 1 for window in result.windows)


class TestEpochBoundaryFuzz:
    """Injected violations across epoch boundaries must all be flagged."""

    def _mutable_run(self, seed: int):
        system, timeline = _churn_timeline()
        result = run_reconfig_event_workload(
            system,
            timeline=timeline,
            num_clients=4,
            operations_per_client=18,
            rng=np.random.default_rng(seed),
            keep_history=True,
        )
        assert result.check.ok
        return list(result.history), list(result.windows)

    @staticmethod
    def _legitimate_pairs(records, windows, position):
        window = windows[position]
        pairs = set()
        for record in records:
            if record.kind != "write" or record.attempted_pair is None:
                continue
            if window.start <= record.invoked_at and (
                record.invoked_at < window.end
            ):
                pairs.add(record.attempted_pair)
        return pairs

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_stale_read_from_evicted_epoch_is_flagged(self, seed):
        records, windows = self._mutable_run(seed)
        # A pair only epoch 0 produced, no later epoch's writes re-created.
        only_e0 = (
            self._legitimate_pairs(records, windows, 0)
            - self._legitimate_pairs(records, windows, 1)
            - self._legitimate_pairs(records, windows, 2)
        )
        assert only_e0, "epoch 0 must have written something unique"
        ghost = sorted(only_e0, key=lambda pair: pair.timestamp)[-1]
        victims = [
            i
            for i, r in enumerate(records)
            if r.kind == "read"
            and r.success
            and r.invoked_at >= windows[2].start
        ]
        assert victims, "epoch 2 must contain a successful read"
        victim = victims[-1]
        records[victim] = replace(
            records[victim], value=ghost.value, timestamp=ghost.timestamp
        )
        check = check_register_history(records, epochs=windows)
        assert check.cross_epoch_reads >= 1
        assert not check.ok

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_write_acknowledged_by_severed_server_is_flagged(self, seed):
        records, windows = self._mutable_run(seed)
        severed = windows[0].members - windows[1].members
        assert severed, "the churn severs the outer ring"
        intruder = sorted(severed, key=repr)[0]
        victims = [
            i
            for i, r in enumerate(records)
            if r.kind == "write"
            and r.success
            and r.quorum is not None
            and windows[1].start <= r.invoked_at
            and r.responded_at < windows[1].end
        ]
        assert victims, "epoch 1 must contain a successful write"
        victim = victims[0]
        records[victim] = replace(
            records[victim], quorum=records[victim].quorum | {intruder}
        )
        check = check_register_history(records, epochs=windows)
        assert check.foreign_quorum_members >= 1
        assert not check.ok

    @pytest.mark.parametrize("seed", [1, 7])
    def test_fabrication_across_epochs_is_still_fabrication(self, seed):
        from repro.simulation import Timestamp

        records, windows = self._mutable_run(seed)
        victims = [
            i
            for i, r in enumerate(records)
            if r.kind == "read" and r.success and r.invoked_at > windows[1].start
        ]
        victim = victims[0]
        records[victim] = replace(
            records[victim],
            value="forged-by-nobody",
            timestamp=Timestamp(counter=10**6, client_id=99),
        )
        check = check_register_history(records, epochs=windows)
        assert check.fabricated_reads >= 1
        assert not check.ok

    def test_severed_between_names_the_ring(self):
        system, timeline = _churn_timeline()
        membership = timeline.membership
        ring = membership.epoch(0).member_set() - membership.epoch(1).member_set()
        assert severed_between(membership, 0, 1) == ring
        assert severed_between(membership, 2, 2) == frozenset()


class TestFacade:
    @pytest.mark.parametrize("scenario", ["reconfig-churn", "reconfig-growth"])
    @pytest.mark.parametrize("engine", ["vectorized", "event"])
    def test_catalogue_reconfig_is_seed_deterministic(self, scenario, engine):
        spec = api.WorkloadSpec(
            system="mgrid",
            params={"side": 5, "b": 1},
            scenario=scenario,
            operations=120,
            seed=SEED,
        )
        first = api.run(spec, engine=engine)
        second = api.run(spec, engine=engine)
        assert first.engine == engine
        assert first.to_dict() == second.to_dict()
        assert first.consistent
        assert first.epochs is not None and len(first.epochs) == 3

    def test_report_schema_includes_epochs(self):
        spec = api.WorkloadSpec(
            system="mgrid",
            params={"side": 5, "b": 1},
            scenario="reconfig-churn",
            operations=90,
            seed=3,
        )
        report = api.run(spec)
        payload = report.to_dict()
        assert tuple(payload) == api.WorkloadReport.SCHEMA
        assert json.loads(json.dumps(payload)) == payload
        # Fixed-membership runs keep the slot, unset.
        plain = api.run(
            api.WorkloadSpec(
                system="mgrid", params={"side": 5, "b": 1}, operations=40, seed=3
            )
        )
        assert plain.epochs is None

    def test_membership_field_drives_a_custom_reconfig(self):
        spec = api.WorkloadSpec(
            system="mgrid",
            params={"side": 5, "b": 1},
            membership=api.MembershipSpec(
                events=(("sever", 9), ("join", 9)), policy="resolve"
            ),
            operations=90,
            seed=3,
        )
        report = api.run(spec)
        assert report.scenario == "reconfig-custom"
        assert [epoch["n"] for epoch in report.epochs] == [25, 16, 25]
        assert report.consistent

    def test_membership_and_scenario_are_mutually_exclusive(self):
        with pytest.raises(InvalidParameterError):
            api.WorkloadSpec(
                system="mgrid",
                params={"side": 5, "b": 1},
                scenario="crash",
                membership=api.MembershipSpec(events=(("sever", 1),)),
            )


class TestMembershipSpec:
    def test_json_round_trip(self):
        spec = api.MembershipSpec(
            events=(("sever", 9), ("join", 9)),
            fractions=(0.5, 0.25, 0.25),
            policy="resolve",
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert api.MembershipSpec.from_dict(payload) == spec
        assert spec.num_epochs == 3

    def test_from_dict_accepts_pairs(self):
        spec = api.MembershipSpec.from_dict(
            {"events": [["join", 2]], "policy": "uniform"}
        )
        assert spec.events == (("join", 2),)
        assert spec.policy == "uniform"

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            api.MembershipSpec(events=())
        with pytest.raises(InvalidParameterError):
            api.MembershipSpec(events=(("shrink", 1),))
        with pytest.raises(InvalidParameterError):
            api.MembershipSpec(events=(("sever", 0),))
        with pytest.raises(InvalidParameterError):
            api.MembershipSpec(events=(("sever", 1),), fractions=(1.0,))
        with pytest.raises(InvalidParameterError):
            api.MembershipSpec(events=(("sever", 1),), policy="anneal")

    def test_build_expands_over_a_universe(self):
        system = MGrid(5, 1)
        spec = api.MembershipSpec(events=(("sever", 9), ("join", 9)))
        timeline = spec.build(system.universe)
        assert timeline.num_epochs == 3
        assert timeline.membership.epoch(2).universe == system.universe
