"""Property/fuzz tests for the service wire codec (`repro.service.wire`).

The replica front door must uphold two promises: (1) every well-formed
frame round-trips bit-exactly through ``encode_frame``/``decode_frame``,
and (2) *no* byte string — truncated, oversized, non-JSON, wrong-typed —
ever produces anything but a clean :class:`WireProtocolError`.  Random
payloads and random mutations of valid frames probe both directions; the
message translators are additionally checked against the simulator's
request/reply dataclasses so a live replica and a simulated one speak the
same schema.
"""

from __future__ import annotations

import json
import string
import struct

import numpy as np
import pytest

from repro.exceptions import ServiceError, WireProtocolError
from repro.service import wire
from repro.simulation.messages import (
    ReadReply,
    ReadRequest,
    Timestamp,
    TimestampReply,
    TimestampRequest,
    ValueTimestampPair,
    WriteAck,
    WriteRequest,
)

SEEDS = [3, 17, 91]


def _random_json(rng: np.random.Generator, depth: int = 0) -> object:
    """A random JSON value: scalars, lists and dicts up to depth 3."""
    kinds = ["int", "float", "str", "bool", "none"]
    if depth < 3:
        kinds += ["list", "dict"]
    kind = kinds[rng.integers(len(kinds))]
    if kind == "int":
        return int(rng.integers(-(2**31), 2**31))
    if kind == "float":
        return float(np.round(rng.normal() * 1e3, 6))
    if kind == "str":
        letters = string.ascii_letters + string.digits + " _-éλ∅"
        return "".join(letters[rng.integers(len(letters))] for _ in range(rng.integers(0, 12)))
    if kind == "bool":
        return bool(rng.integers(2))
    if kind == "none":
        return None
    if kind == "list":
        return [_random_json(rng, depth + 1) for _ in range(rng.integers(0, 4))]
    return {
        f"k{i}": _random_json(rng, depth + 1) for i in range(rng.integers(0, 4))
    }


# ----------------------------------------------------------------------
# Round-trip properties.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_random_payloads_round_trip(seed):
    rng = np.random.default_rng(seed)
    for _ in range(200):
        payload = {"type": "READ", "blob": _random_json(rng)}
        decoded, remainder = wire.decode_frame(wire.encode_frame(payload))
        assert remainder == b""
        assert decoded == json.loads(json.dumps(payload))


@pytest.mark.parametrize("seed", SEEDS)
def test_concatenated_frames_stream_decode(seed):
    """decode_frame peels exactly one frame, handing back the remainder."""
    rng = np.random.default_rng(seed)
    payloads = [{"type": "READ", "i": int(i), "blob": _random_json(rng)} for i in range(20)]
    data = b"".join(wire.encode_frame(p) for p in payloads)
    seen = []
    while data:
        payload, data = wire.decode_frame(data)
        seen.append(payload)
    assert seen == [json.loads(json.dumps(p)) for p in payloads]


def test_frame_at_exact_size_limit_round_trips():
    padding = "x" * (wire.MAX_FRAME_BYTES - len('{"type":"READ","pad":""}'))
    payload = {"type": "READ", "pad": padding}
    encoded = wire.encode_frame(payload)
    assert len(encoded) == 4 + wire.MAX_FRAME_BYTES
    decoded, _ = wire.decode_frame(encoded)
    assert decoded == payload


# ----------------------------------------------------------------------
# Malformed input: always a clean WireProtocolError, never a hang/crash.
# ----------------------------------------------------------------------
def test_oversized_frame_rejected_at_both_ends():
    payload = {"type": "READ", "pad": "x" * (wire.MAX_FRAME_BYTES + 1)}
    with pytest.raises(WireProtocolError, match="exceeds"):
        wire.encode_frame(payload)
    # A forged oversized length prefix is rejected before any body read.
    forged = struct.pack("!I", wire.MAX_FRAME_BYTES + 1) + b"x"
    with pytest.raises(WireProtocolError, match="exceeds"):
        wire.decode_frame(forged)


def test_zero_length_frame_rejected():
    with pytest.raises(WireProtocolError, match="zero-length"):
        wire.decode_frame(struct.pack("!I", 0))


@pytest.mark.parametrize("seed", SEEDS)
def test_truncations_of_valid_frames_rejected(seed):
    rng = np.random.default_rng(seed)
    frame = wire.encode_frame({"type": "WRITE", "blob": _random_json(rng)})
    for cut in range(len(frame)):
        with pytest.raises(WireProtocolError, match="truncated"):
            wire.decode_frame(frame[:cut])


@pytest.mark.parametrize("seed", SEEDS)
def test_random_byte_mutations_never_crash(seed):
    """Flipping bytes in a valid frame either still decodes or raises cleanly."""
    rng = np.random.default_rng(seed)
    frame = bytearray(wire.encode_frame({"type": "READ", "blob": _random_json(rng)}))
    for _ in range(300):
        mutated = bytearray(frame)
        for _ in range(rng.integers(1, 4)):
            mutated[rng.integers(len(mutated))] = rng.integers(256)
        try:
            payload, _ = wire.decode_frame(bytes(mutated))
        except WireProtocolError:
            continue
        assert isinstance(payload, dict) and isinstance(payload["type"], str)


@pytest.mark.parametrize(
    "body",
    [
        b"not json at all",
        b"[1,2,3]",  # JSON but not an object
        b'"string"',
        b'{"no_type":1}',
        b'{"type":7}',  # non-string type
        b"\xff\xfe\x00bad utf8",
    ],
)
def test_non_object_bodies_rejected(body):
    with pytest.raises(WireProtocolError):
        wire.decode_frame(struct.pack("!I", len(body)) + body)


def test_unserialisable_payload_rejected_at_sender():
    with pytest.raises(WireProtocolError, match="JSON-serialisable"):
        wire.encode_frame({"type": "WRITE", "value": {1, 2, 3}})
    with pytest.raises(WireProtocolError, match="JSON-serialisable"):
        wire.canonical_value(object())


def test_non_dict_payload_rejected_at_sender():
    with pytest.raises(WireProtocolError, match="'type'"):
        wire.encode_frame(["READ"])
    with pytest.raises(WireProtocolError, match="'type'"):
        wire.encode_frame({"kind": "READ"})


# ----------------------------------------------------------------------
# Message translation against the simulator schema.
# ----------------------------------------------------------------------
def test_request_translation_round_trips():
    ts = Timestamp(counter=4, client_id=2)
    for request in [
        TimestampRequest(client_id=7),
        ReadRequest(client_id=0),
        WriteRequest(client_id=3, pair=ValueTimestampPair(value=("a", 1), timestamp=ts)),
    ]:
        back = wire.frame_to_request(
            json.loads(json.dumps(wire.request_to_frame(request)))
        )
        assert type(back) is type(request)
        assert back.client_id == request.client_id
        if isinstance(request, WriteRequest):
            assert back.pair.timestamp == ts
            assert back.pair.value == wire.canonical_value(request.pair.value)


def test_reply_translation_round_trips():
    ts = Timestamp(counter=9, client_id=5)
    server_id = ("row", 3)
    for reply in [
        TimestampReply(server_id=server_id, timestamp=ts),
        ReadReply(
            server_id=server_id,
            pair=ValueTimestampPair(value={"k": [1, 2]}, timestamp=ts),
        ),
        WriteAck(server_id=server_id, accepted=True),
    ]:
        frame = wire.reply_to_frame(reply, server_index=11)
        assert frame["server"] == 11
        back = wire.frame_to_reply(json.loads(json.dumps(frame)), server_id=server_id)
        assert type(back) is type(reply)
        assert back.server_id == server_id


def test_error_frame_raises_at_client():
    with pytest.raises(WireProtocolError, match="boom"):
        wire.frame_to_reply({"type": "ERROR", "message": "boom"}, server_id=0)


@pytest.mark.parametrize(
    "payload",
    [
        {"type": "READ_TS"},  # missing client
        {"type": "READ", "client": "zero"},
        {"type": "READ", "client": True},  # bools are not protocol ints
        {"type": "WRITE", "client": 1, "value": 2},  # missing ts
        {"type": "WRITE", "client": 1, "value": 2, "ts": [1]},
        {"type": "WRITE", "client": 1, "value": 2, "ts": [1, True]},
        {"type": "WRITE", "client": 1, "value": 2, "ts": "1.2"},
        {"type": "STATUS"},  # service frame, not a protocol request
        {"type": "NOPE"},
    ],
)
def test_malformed_requests_rejected(payload):
    with pytest.raises(WireProtocolError):
        wire.frame_to_request(payload)


@pytest.mark.parametrize(
    "payload",
    [
        {"type": "READ_TS_REPLY", "server": 0},  # missing ts
        {"type": "READ_REPLY", "server": 0, "value": 1},  # missing ts
        {"type": "READ_REPLY", "server": 0, "value": 1, "ts": [0, 0, 0]},
        {"type": "WRITE_ACK", "server": 0, "accepted": "yes"},
        {"type": "WRITE_ACK", "server": 0},
        {"type": "SURPRISE"},
    ],
)
def test_malformed_replies_rejected(payload):
    with pytest.raises(WireProtocolError):
        wire.frame_to_reply(payload, server_id=0)


def test_canonical_value_freezes_containers():
    frozen = wire.canonical_value({"b": [1, {"x": 2}], "a": (3, 4)})
    assert isinstance(frozen, tuple)
    assert hash(frozen) == hash(wire.canonical_value({"a": [3, 4], "b": [1, {"x": 2}]}))


def test_wire_error_is_service_error():
    """The exception taxonomy nests wire failures under the service layer."""
    assert issubclass(WireProtocolError, ServiceError)
