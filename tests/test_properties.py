"""Property-based tests (hypothesis) for the core invariants of the paper.

These tests generate random instances — threshold systems, compositions,
random explicit quorum systems, finite fields — and check the structural
theorems on every one of them: Definition 3.1, Lemma 3.6 / Corollary 3.7,
Theorem 4.1, Theorem 4.7, Propositions 4.3-4.5, and the algebraic axioms of
the substrates.
"""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import (
    ExplicitQuorumSystem,
    Strategy,
    ThresholdQuorumSystem,
    compose,
    exact_failure_probability,
    exact_load,
    load_lower_bound,
    masking_report,
)
from repro.core.transversal import is_transversal, minimal_transversal
from repro.gf import GaloisField
from repro.simulation import Timestamp

# ----------------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------------

#: (n, k) pairs describing valid threshold quorum systems of modest size.
threshold_parameters = st.integers(min_value=3, max_value=8).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(min_value=n // 2 + 1, max_value=n))
)


@st.composite
def explicit_quorum_systems(draw):
    """Generate a random quorum system: random sets forced to share a core element.

    Every generated set is augmented with a randomly chosen *core* element so
    that pairwise intersection (Definition 3.1) always holds; beyond that the
    sets are arbitrary, which exercises unfair, irregular systems.
    """
    n = draw(st.integers(min_value=3, max_value=7))
    core = draw(st.integers(min_value=0, max_value=n - 1))
    num_quorums = draw(st.integers(min_value=1, max_value=5))
    quorums = []
    for _ in range(num_quorums):
        members = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
        )
        quorums.append(frozenset(members | {core}))
    return ExplicitQuorumSystem(range(n), quorums, name="random")


probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_probabilities = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


# ----------------------------------------------------------------------------
# Quorum-system invariants.
# ----------------------------------------------------------------------------


class TestThresholdInvariants:
    @given(threshold_parameters)
    @settings(max_examples=30, deadline=None)
    def test_analytic_measures_match_enumeration(self, parameters):
        n, k = parameters
        system = ThresholdQuorumSystem(n, k)
        explicit = system.to_explicit()
        assert explicit.min_quorum_size() == system.min_quorum_size()
        assert explicit.min_intersection_size() == system.min_intersection_size()
        assert explicit.min_transversal_size() == system.min_transversal_size()
        assert explicit.num_quorums() == system.num_quorums()

    @given(threshold_parameters, probabilities)
    @settings(max_examples=30, deadline=None)
    def test_crash_probability_matches_enumeration(self, parameters, p):
        n, k = parameters
        system = ThresholdQuorumSystem(n, k)
        exact = exact_failure_probability(system, p).value
        assert system.crash_probability(p) == pytest.approx(exact, abs=1e-9)

    @given(threshold_parameters)
    @settings(max_examples=20, deadline=None)
    def test_theorem_4_1_load_bound(self, parameters):
        n, k = parameters
        system = ThresholdQuorumSystem(n, k)
        b = system.masking_bound()
        assert system.load() >= load_lower_bound(n, b, quorum_size=k) - 1e-9
        assert system.load() >= load_lower_bound(n, b) - 1e-9


class TestExplicitSystemInvariants:
    @given(explicit_quorum_systems())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_definition_3_1_holds_by_construction(self, system):
        system.validate()

    @given(explicit_quorum_systems())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_minimal_transversal_is_a_transversal(self, system):
        transversal = minimal_transversal(system.quorums())
        assert is_transversal(transversal, system.quorums())
        assert len(transversal) <= system.min_quorum_size()

    @given(explicit_quorum_systems())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_transversal_engines_agree(self, system):
        quorums = system.quorums()
        assert len(minimal_transversal(quorums, engine="milp")) == len(
            minimal_transversal(quorums, engine="branch-and-bound")
        )

    @given(explicit_quorum_systems())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_corollary_3_7_agrees_with_literal_masking_check(self, system):
        bound = system.masking_bound()
        assert masking_report(system, bound).is_masking
        assert not masking_report(system, bound + 1).is_masking

    @given(explicit_quorum_systems())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_lp_load_between_bounds(self, system):
        result = exact_load(system)
        # Theorem 4.1 (with b = masking bound) and the trivial upper bound.
        b = system.masking_bound()
        assert result.load <= 1.0 + 1e-9
        assert result.load >= load_lower_bound(system.n, b, system.min_quorum_size()) - 1e-6
        # The optimal strategy achieves the reported load.
        assert result.strategy.induced_system_load(system.universe) == pytest.approx(
            result.load, abs=1e-6
        )

    @given(explicit_quorum_systems(), small_probabilities)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_proposition_4_3_availability_bound(self, system, p):
        failure = exact_failure_probability(system, p).value
        assert failure >= p ** system.min_transversal_size() - 1e-9

    @given(explicit_quorum_systems(), small_probabilities, small_probabilities)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_fp_is_monotone_in_p(self, system, p_low, p_high):
        low, high = sorted((p_low, p_high))
        assert (
            exact_failure_probability(system, low).value
            <= exact_failure_probability(system, high).value + 1e-9
        )


class TestCompositionProperties:
    @given(threshold_parameters, threshold_parameters)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    def test_theorem_4_7_parameters(self, outer_parameters, inner_parameters):
        outer = ThresholdQuorumSystem(*outer_parameters)
        inner = ThresholdQuorumSystem(*inner_parameters)
        assume(outer.num_quorums() * inner.num_quorums() ** outer.min_quorum_size() <= 3000)
        composed = compose(outer, inner)
        explicit = composed.to_explicit()
        assert explicit.min_quorum_size() == outer.min_quorum_size() * inner.min_quorum_size()
        assert explicit.min_intersection_size() == (
            outer.min_intersection_size() * inner.min_intersection_size()
        )
        assert explicit.min_transversal_size() == (
            outer.min_transversal_size() * inner.min_transversal_size()
        )

    @given(threshold_parameters, threshold_parameters, small_probabilities)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_theorem_4_7_crash_probability(self, outer_parameters, inner_parameters, p):
        outer = ThresholdQuorumSystem(*outer_parameters)
        inner = ThresholdQuorumSystem(*inner_parameters)
        composed = compose(outer, inner)
        expected = outer.crash_probability(inner.crash_probability(p))
        assert composed.crash_probability(p) == pytest.approx(expected, abs=1e-9)

    @given(threshold_parameters, threshold_parameters)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_theorem_4_7_load(self, outer_parameters, inner_parameters):
        outer = ThresholdQuorumSystem(*outer_parameters)
        inner = ThresholdQuorumSystem(*inner_parameters)
        composed = compose(outer, inner)
        assert composed.load() == pytest.approx(outer.load() * inner.load())


class TestStrategyProperties:
    @given(threshold_parameters)
    @settings(max_examples=20, deadline=None)
    def test_total_induced_load_is_expected_quorum_size(self, parameters):
        n, k = parameters
        system = ThresholdQuorumSystem(n, k)
        strategy = Strategy.uniform_over_system(system)
        loads = strategy.induced_loads(system.universe)
        assert sum(loads.values()) == pytest.approx(k)

    @given(threshold_parameters)
    @settings(max_examples=20, deadline=None)
    def test_any_strategy_load_dominates_lp_load(self, parameters):
        n, k = parameters
        system = ThresholdQuorumSystem(n, k)
        uniform_load = Strategy.uniform_over_system(system).induced_system_load(system.universe)
        assert uniform_load >= exact_load(system).load - 1e-9


# ----------------------------------------------------------------------------
# Substrate invariants.
# ----------------------------------------------------------------------------


class TestFieldProperties:
    @given(
        st.sampled_from([2, 3, 4, 5, 7, 8, 9]),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_axioms(self, order, a, b, c):
        field = GaloisField(order)
        a, b, c = a % order, b % order, c % order
        assert field.add(a, b) == field.add(b, a)
        assert field.mul(a, b) == field.mul(b, a)
        assert field.add(field.add(a, b), c) == field.add(a, field.add(b, c))
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
        assert field.mul(a, field.add(b, c)) == field.add(field.mul(a, b), field.mul(a, c))

    @given(st.sampled_from([2, 3, 4, 5, 7, 8, 9]), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_inverse_property(self, order, value):
        field = GaloisField(order)
        value = value % order
        assume(value != 0)
        assert field.mul(value, field.inverse(value)) == 1
        assert field.div(value, value) == 1


class TestTimestampProperties:
    @given(st.integers(0, 10**6), st.integers(0, 100), st.integers(0, 10**6), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_total_order_is_antisymmetric(self, c1, i1, c2, i2):
        first, second = Timestamp(c1, i1), Timestamp(c2, i2)
        assert (first < second) + (second < first) + (first == second) == 1

    @given(st.integers(0, 10**6), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_next_for_is_strictly_increasing(self, counter, owner, successor_owner):
        current = Timestamp(counter, owner)
        assert current.next_for(successor_owner) > current
