"""R2 fixture (clean): mask-native work inside a hot-module path."""


def total_popcount(engine):
    return int(engine.quorum_sizes().sum())


def mask_scan(engine):
    for mask in engine.iter_quorum_masks():
        yield mask
