"""R0 fixture: a pragma naming a rule that does not exist."""

import numpy as np


def typo() -> np.random.Generator:
    return np.random.default_rng()  # repro-lint: disable=R99 -- justification present but the rule id is wrong
