"""R0 fixture: a pragma with no justification is itself a violation.

The suppression is also void, so the underlying R1 still fires.
"""

import numpy as np


def unexplained() -> np.random.Generator:
    return np.random.default_rng()  # repro-lint: disable=R1
