"""R5 fixture registry (clean): imports every module, declares params."""

from fixturepkg.constructions.wheel import Wheel


def register(entry):
    return entry


class ConstructionEntry:
    def __init__(self, **kwargs):
        self.kwargs = kwargs


class ParamSpec:
    def __init__(self, name, **kwargs):
        self.name = name


register(
    ConstructionEntry(
        name="wheel",
        factory=Wheel,
        params=(ParamSpec("n", doc="number of servers"),),
        summary="fixture wheel",
    )
)
