"""R5 fixture api package (clean layout)."""
