"""R5 fixture construction: one public class, one private helper."""


class Wheel:
    def __init__(self, n: int):
        self.n = n


class _Scaffold:
    pass
