"""R5 fixture package (clean layout)."""
