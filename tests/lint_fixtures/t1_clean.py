"""T1 fixture (clean): fully annotated public surface; private defs exempt."""


def annotated(n: int, *values: float, **options: object) -> int:
    del values, options
    return n + 1


def _private_helper(n):
    return n


class Public:
    def __init__(self, n: int):
        self.n = n

    def method(self) -> int:
        return self.n

    def _internal(self, anything):
        return anything


class _Internal:
    def untyped_is_fine_here(self, anything):
        return anything
