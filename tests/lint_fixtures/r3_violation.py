"""R3 fixture: bare builtin exceptions escaping the taxonomy."""


def reject(n: int) -> None:
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")


def explode() -> None:
    raise RuntimeError("unstructured failure")
