"""R1 fixture: every way of drawing untracked randomness the rule catches."""

import random

import numpy as np
from numpy.random import default_rng as rng_factory


def ambient_generator():
    return np.random.default_rng()


def none_seeded_generator():
    return rng_factory(None)


def legacy_numpy_draw():
    np.random.seed(42)
    return np.random.uniform(0.0, 1.0)


def stdlib_global_draw():
    return random.random()
