"""R1 fixture (clean): seed-threaded randomness only."""

import random

import numpy as np


def seeded_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def threaded_draw(rng: np.random.Generator) -> float:
    return float(rng.uniform(0.0, 1.0))


def stdlib_instance(seed: int) -> random.Random:
    return random.Random(seed)
