"""R2 fixture: frozenset traversals inside a hot-module path."""


def slow_total_size(system):
    return sum(len(quorum) for quorum in system.quorums())


def slow_scan(system):
    for quorum in system.iter_quorums():
        yield frozenset(quorum)
