"""R4 fixture (clean): tolerance helpers and int comparisons stay legal."""

from repro.core.floats import is_zero, isclose


def is_unloaded(load: float) -> bool:
    return is_zero(load)


def near_half(value: float) -> bool:
    return isclose(value, 0.5)


def int_compare(count: int) -> bool:
    return count == 0


def float_ordering(load: float) -> bool:
    return load < 1.0
