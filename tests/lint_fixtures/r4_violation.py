"""R4 fixture: exact equality against float expressions."""


def is_unloaded(load: float) -> bool:
    return load == 0.0


def not_half(value: float) -> bool:
    return 0.5 != value


def coerced(value: object) -> bool:
    return float(value) == float(0)
