"""R5 fixture registry (violating): missing module, missing class, no params."""

from fixturepkg.constructions.wheel import Wheel


def register(entry):
    return entry


class ConstructionEntry:
    def __init__(self, **kwargs):
        self.kwargs = kwargs


register(
    ConstructionEntry(
        name="wheel",
        factory=Wheel,
        summary="fixture wheel registered without typed parameter specs",
    )
)
