"""R5 fixture construction whose second public class is never registered."""


class Wheel:
    def __init__(self, n: int):
        self.n = n


class Hub:
    pass
