"""R5 fixture construction module the registry never imports."""


class Orphan:
    pass
