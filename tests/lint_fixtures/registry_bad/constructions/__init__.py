"""R5 fixture package (violating layout)."""
