"""T1 fixture: public surfaces with annotation gaps."""


def missing_return(n: int):
    return n + 1


def missing_param(n) -> int:
    return n + 1


class Public:
    def missing_kwargs(self, **kwargs) -> None:
        del kwargs
