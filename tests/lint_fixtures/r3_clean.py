"""R3 fixture (clean): taxonomy exceptions, and re-raises of caught ones."""

from repro.exceptions import ComputationError, InvalidParameterError


def reject(n: int) -> None:
    if n < 0:
        raise InvalidParameterError(f"n must be non-negative, got {n}")


def wrap() -> None:
    try:
        reject(-1)
    except InvalidParameterError as exc:
        raise ComputationError("rejected") from exc
