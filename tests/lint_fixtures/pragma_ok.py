"""R0 fixture (clean): a justified pragma suppresses exactly its line."""

import numpy as np


def sanctioned_entropy() -> np.random.Generator:
    return np.random.default_rng()  # repro-lint: disable=R1 -- fixture modelling the one audited entropy entry point
