"""Unit tests for access strategies (Definition 3.8, first half)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Strategy, StrategyError, Universe


class TestConstruction:
    def test_valid_distribution(self):
        strategy = Strategy({frozenset({0, 1}): 0.25, frozenset({1, 2}): 0.75})
        assert strategy.probability({0, 1}) == pytest.approx(0.25)
        assert strategy.probability({1, 2}) == pytest.approx(0.75)

    def test_unsupported_quorum_has_zero_probability(self):
        strategy = Strategy({frozenset({0, 1}): 1.0})
        assert strategy.probability({7, 8}) == 0.0

    def test_rejects_negative_probability(self):
        with pytest.raises(StrategyError):
            Strategy({frozenset({0}): -0.2, frozenset({1}): 1.2})

    def test_rejects_non_normalised_without_flag(self):
        with pytest.raises(StrategyError):
            Strategy({frozenset({0, 1}): 0.3})

    def test_normalise_flag_rescales(self):
        strategy = Strategy({frozenset({0}): 2.0, frozenset({0, 1}): 2.0}, normalise=True)
        assert strategy.probability({0}) == pytest.approx(0.5)

    def test_zero_weights_are_dropped(self):
        strategy = Strategy({frozenset({0}): 1.0, frozenset({1}): 0.0})
        assert len(strategy) == 1

    def test_empty_strategy_rejected(self):
        with pytest.raises(StrategyError):
            Strategy({})

    def test_duplicate_quorums_accumulate(self):
        # Two distinct keys that normalise to the same frozenset accumulate.
        strategy = Strategy({(0, 1): 0.5, (1, 0): 0.5})
        assert strategy.probability({0, 1}) == pytest.approx(1.0)


class TestUniform:
    def test_uniform_over_quorums(self):
        strategy = Strategy.uniform([{0, 1}, {1, 2}, {2, 0}])
        assert all(p == pytest.approx(1 / 3) for _, p in strategy.items())

    def test_uniform_over_system(self, simple_system):
        strategy = Strategy.uniform_over_system(simple_system)
        assert len(strategy) == simple_system.num_quorums()

    def test_uniform_over_nothing_rejected(self):
        with pytest.raises(StrategyError):
            Strategy.uniform([])


class TestInducedLoad:
    def test_induced_loads_definition(self):
        universe = Universe.of_size(3)
        strategy = Strategy({frozenset({0, 1}): 0.5, frozenset({1, 2}): 0.5})
        loads = strategy.induced_loads(universe)
        assert loads[0] == pytest.approx(0.5)
        assert loads[1] == pytest.approx(1.0)
        assert loads[2] == pytest.approx(0.5)
        assert strategy.induced_system_load(universe) == pytest.approx(1.0)

    def test_induced_load_of_uniform_majority(self, majority_5):
        strategy = Strategy.uniform_over_system(majority_5)
        # Fair system: every server carries load c/n = 3/5.
        loads = strategy.induced_loads(majority_5.universe)
        assert all(value == pytest.approx(0.6) for value in loads.values())

    def test_total_induced_load_equals_expected_quorum_size(self, simple_system):
        strategy = Strategy.uniform_over_system(simple_system)
        loads = strategy.induced_loads(simple_system.universe)
        expected_size = sum(
            len(quorum) * probability for quorum, probability in strategy.items()
        )
        assert sum(loads.values()) == pytest.approx(expected_size)


class TestValidationAndSampling:
    def test_validate_against_accepts_real_quorums(self, simple_system):
        Strategy.uniform_over_system(simple_system).validate_against(simple_system)

    def test_validate_against_rejects_foreign_sets(self, simple_system):
        strategy = Strategy({frozenset({0, 4}): 1.0})
        with pytest.raises(StrategyError):
            strategy.validate_against(simple_system)

    def test_from_vector(self, simple_system):
        vector = np.array([1.0, 0.0, 1.0])
        strategy = Strategy.from_vector(simple_system, vector)
        assert len(strategy) == 2
        assert strategy.probability(simple_system.quorums()[0]) == pytest.approx(0.5)

    def test_from_vector_wrong_length_rejected(self, simple_system):
        with pytest.raises(StrategyError):
            Strategy.from_vector(simple_system, np.array([1.0]))

    def test_sampling_follows_support(self, simple_system, rng):
        strategy = Strategy({simple_system.quorums()[0]: 1.0})
        for _ in range(5):
            assert strategy.sample(rng) == simple_system.quorums()[0]

    def test_sampling_respects_probabilities(self, rng):
        heavy = frozenset({0})
        light = frozenset({0, 1})
        strategy = Strategy({heavy: 0.9, light: 0.1})
        draws = [strategy.sample(rng) for _ in range(300)]
        assert draws.count(heavy) > draws.count(light)


class TestToleranceReconciliation:
    def test_sum_check_uses_the_declared_tolerance(self):
        # 1 + 5e-7 used to slip through the hard-coded 1e-6 slack even though
        # the module declares a 1e-9 tolerance; the checks now agree.
        with pytest.raises(StrategyError):
            Strategy({frozenset({0}): 1.0 + 5e-7})

    def test_float_noise_within_tolerance_accepted(self):
        thirds = {frozenset({i}): 1.0 / 3.0 for i in range(3)}
        Strategy(thirds)


class TestInducedLoadMismatch:
    def test_quorum_element_outside_universe_raises(self):
        universe = Universe.of_size(2)
        strategy = Strategy({frozenset({0, 5}): 1.0})
        with pytest.raises(StrategyError):
            strategy.induced_loads(universe)

    def test_matching_universe_still_works(self):
        universe = Universe.of_size(3)
        strategy = Strategy({frozenset({0, 1}): 1.0})
        assert strategy.induced_system_load(universe) == pytest.approx(1.0)


class TestFromVectorNormalisation:
    def test_normalises_before_dropping_nonpositive_entries(self, simple_system):
        # The truncated entries are scaled away with the rest of the vector,
        # so the surviving quorums keep their relative weights 2:1.
        vector = np.array([2.0, 1.0, 0.0])
        strategy = Strategy.from_vector(simple_system, vector)
        assert strategy.probability(simple_system.quorums()[0]) == pytest.approx(2 / 3)
        assert strategy.probability(simple_system.quorums()[1]) == pytest.approx(1 / 3)
        assert strategy.probability(simple_system.quorums()[2]) == 0.0

    def test_non_positive_total_rejected(self, simple_system):
        with pytest.raises(StrategyError):
            Strategy.from_vector(simple_system, np.zeros(3))

    def test_meaningful_negative_mass_rejected(self, simple_system):
        # Pre-fix, the negative entry was silently dropped and its mass
        # redistributed over the surviving quorums; it is now an error.
        with pytest.raises(StrategyError):
            Strategy.from_vector(simple_system, np.array([2.0, 1.0, -1.0]))


class TestVectorisedSampling:
    def test_sample_many_matches_sequential_sample_stream(self, simple_system):
        strategy = Strategy.uniform_over_system(simple_system)
        batched = strategy.sample_many(np.random.default_rng(42), 50)
        rng = np.random.default_rng(42)
        sequential = np.array([strategy.sample_index(rng) for _ in range(50)])
        assert np.array_equal(batched, sequential)

    def test_sample_many_shape_and_range(self, simple_system):
        strategy = Strategy.uniform_over_system(simple_system)
        indices = strategy.sample_many(np.random.default_rng(0), (20, 4))
        assert indices.shape == (20, 4)
        assert indices.min() >= 0
        assert indices.max() < len(strategy)

    def test_sample_many_follows_probabilities(self):
        strategy = Strategy({frozenset({0}): 0.9, frozenset({1}): 0.1})
        indices = strategy.sample_many(np.random.default_rng(1), 2000)
        heavy_index = strategy.support.index(frozenset({0}))
        assert np.count_nonzero(indices == heavy_index) > 1500

    def test_support_masks_and_engine_are_cached(self, simple_system):
        strategy = Strategy.uniform_over_system(simple_system)
        universe = simple_system.universe
        assert strategy.support_masks(universe) is strategy.support_masks(universe)
        engine = strategy.support_engine(universe)
        assert engine is strategy.support_engine(universe)
        assert engine.num_quorums == len(strategy)
        assert engine.frozensets() == strategy.support
