"""Trace-driven workload tests: arrival processes, skew, and the replay loop.

:mod:`repro.simulation.traces` replays open-loop arrivals (explicit traces
or a synthetic diurnal process) through the event core with a fixed client
pool and a FIFO queue.  These tests pin the arrival sampling (shape,
determinism, diurnal concentration), the Zipf hot-quorum re-weighting, and
the replay's accounting — including the one thing only an open-loop run can
show: latency percentiles that include genuine queueing delay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGrid
from repro.exceptions import SimulationError
from repro.simulation import (
    FaultScenario,
    TraceScenario,
    TraceWorkloadResult,
    hot_quorum_strategy,
    run_trace_workload,
)
from repro.simulation.engine import resolve_strategy


@pytest.fixture
def system():
    return MGrid(4, 0)


# ----------------------------------------------------------------------
# The arrival process.
# ----------------------------------------------------------------------
class TestArrivalSchedule:
    def test_diurnal_schedule_shape_and_determinism(self):
        trace = TraceScenario(name="d", period=100.0, peak_ratio=4.0)
        first = trace.arrival_schedule(300, np.random.default_rng(5))
        second = trace.arrival_schedule(300, np.random.default_rng(5))
        assert first == second
        assert len(first) == 300
        times = [time for time, _ in first]
        assert times == sorted(times)
        assert 0.0 <= times[0] and times[-1] <= 100.0
        assert {kind for _, kind in first} <= {"read", "write"}

    def test_diurnal_peak_concentrates_arrivals(self):
        """The sinusoidal intensity peaks mid-period: the middle half of the
        cycle must hold clearly more than half the arrivals."""
        trace = TraceScenario(name="d", period=100.0, peak_ratio=8.0)
        times = [t for t, _ in trace.arrival_schedule(2000, np.random.default_rng(0))]
        middle = sum(1 for t in times if 25.0 <= t <= 75.0)
        assert middle / len(times) > 0.6

    def test_peak_ratio_one_is_uniform(self):
        trace = TraceScenario(name="flat", period=100.0, peak_ratio=1.0)
        times = [t for t, _ in trace.arrival_schedule(2000, np.random.default_rng(0))]
        middle = sum(1 for t in times if 25.0 <= t <= 75.0)
        assert abs(middle / len(times) - 0.5) < 0.05

    def test_write_fraction_steers_the_mix(self):
        trace = TraceScenario(name="d")
        arrivals = trace.arrival_schedule(
            1000, np.random.default_rng(1), write_fraction=0.9
        )
        writes = sum(1 for _, kind in arrivals if kind == "write")
        assert writes > 800

    def test_explicit_arrivals_are_replayed_verbatim(self):
        explicit = ((0.0, "write"), (1.5, "read"), (3.0, "read"))
        trace = TraceScenario(name="x", arrivals=explicit)
        assert trace.arrival_schedule(999, np.random.default_rng(0)) == explicit

    def test_from_records_parses_the_json_shape(self):
        records = [{"t": 0.0, "op": "write"}, {"t": 2.5, "op": "read"}]
        trace = TraceScenario.from_records("file", records)
        assert trace.arrivals == ((0.0, "write"), (2.5, "read"))
        with pytest.raises(SimulationError):
            TraceScenario.from_records("bad", [{"time": 1.0}])

    def test_validation(self):
        with pytest.raises(SimulationError):
            TraceScenario(name="x", period=0.0)
        with pytest.raises(SimulationError):
            TraceScenario(name="x", peak_ratio=0.5)
        with pytest.raises(SimulationError):
            TraceScenario(name="x", skew=-1.0)
        with pytest.raises(SimulationError):
            TraceScenario(name="x", arrivals=((2.0, "read"), (1.0, "read")))
        with pytest.raises(SimulationError):
            TraceScenario(name="x", arrivals=((0.0, "delete"),))
        with pytest.raises(SimulationError):
            TraceScenario(name="x", arrivals=((-1.0, "read"),))
        with pytest.raises(SimulationError):
            TraceScenario(name="x", byzantine_behaviour="nope")


# ----------------------------------------------------------------------
# Hot-quorum skew.
# ----------------------------------------------------------------------
class TestHotQuorumStrategy:
    def test_zero_skew_is_the_identity(self, system):
        base = resolve_strategy(system, None)
        assert hot_quorum_strategy(system, skew=0.0, base=base) is base

    def test_skew_concentrates_on_the_top_ranks(self, system):
        base = resolve_strategy(system, None)
        skewed = hot_quorum_strategy(system, skew=2.0, base=base)
        assert skewed.probabilities.sum() == pytest.approx(1.0)
        # The first-ranked quorum gains probability mass, the last loses.
        assert skewed.probabilities[0] > base.probabilities[0]
        assert skewed.probabilities[-1] < base.probabilities[-1]

    def test_negative_skew_is_rejected(self, system):
        with pytest.raises(SimulationError):
            hot_quorum_strategy(system, skew=-0.5)


# ----------------------------------------------------------------------
# The replay loop.
# ----------------------------------------------------------------------
class TestReplay:
    def test_diurnal_replay_accounting(self, system):
        trace = TraceScenario(name="diurnal", period=120.0, peak_ratio=4.0, skew=1.1)
        result = run_trace_workload(
            system,
            b=0,
            trace=trace,
            num_operations=150,
            num_clients=6,
            rng=np.random.default_rng(3),
        )
        assert isinstance(result, TraceWorkloadResult)
        assert result.operations == 150
        succeeded = result.successful_reads + result.successful_writes
        assert succeeded + result.failed_operations == 150
        assert result.check is not None and result.check.ok
        assert result.latency_p99 >= result.latency_p50 > 0.0
        assert result.arrival_rate > 0.0
        assert result.empirical_load == pytest.approx(
            max(result.per_server_load.values())
        )

    def test_replay_is_seed_deterministic(self, system):
        trace = TraceScenario(name="diurnal")
        runs = [
            run_trace_workload(
                system,
                b=0,
                trace=trace,
                num_operations=100,
                rng=np.random.default_rng(8),
            )
            for _ in range(2)
        ]
        assert runs[0].per_server_load == runs[1].per_server_load
        assert runs[0].latency_p99 == runs[1].latency_p99
        assert runs[0].queue_delay_p99 == runs[1].queue_delay_p99

    def test_a_tiny_pool_queues_and_a_big_pool_does_not(self, system):
        """Open-loop pressure: one client serving a burst must build genuine
        queueing delay; a pool as large as the burst must not."""
        burst = tuple((0.0, "read") for _ in range(20))
        trace = TraceScenario(name="burst", arrivals=burst)
        starved = run_trace_workload(
            system, b=0, trace=trace, num_clients=1, rng=np.random.default_rng(0)
        )
        roomy = run_trace_workload(
            system, b=0, trace=trace, num_clients=20, rng=np.random.default_rng(0)
        )
        assert starved.queue_delay_p99 > 0.0
        assert roomy.queue_delay_mean == pytest.approx(0.0)
        # Sojourn = queueing + service, so the starved pool's p99 dominates.
        assert starved.latency_p99 > roomy.latency_p99

    def test_explicit_trace_defines_the_operation_count(self, system):
        trace = TraceScenario(
            name="x", arrivals=((0.0, "write"), (1.0, "read"), (2.0, "read"))
        )
        result = run_trace_workload(
            system, b=0, trace=trace, num_operations=999, rng=np.random.default_rng(0)
        )
        assert result.operations == 3
        assert result.successful_writes <= 1

    def test_byzantine_overload_is_refused_without_the_flag(self, system):
        byz = frozenset(system.universe.elements[:3])
        trace = TraceScenario(name="x", fault_state=FaultScenario(byzantine=byz))
        with pytest.raises(SimulationError):
            run_trace_workload(system, b=0, trace=trace, rng=np.random.default_rng(0))

    def test_replay_validates_inputs(self, system):
        trace = TraceScenario(name="x")
        with pytest.raises(SimulationError):
            run_trace_workload(system, b=0, trace=trace, num_clients=0)
        with pytest.raises(SimulationError):
            run_trace_workload(system, b=0, trace=trace, write_fraction=1.5)
        with pytest.raises(SimulationError):
            run_trace_workload(system, b=0, trace="diurnal")  # type: ignore[arg-type]
