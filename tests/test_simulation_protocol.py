"""Integration tests for the masking-quorum register protocol (client + register + runner)."""

from __future__ import annotations

import pytest

from repro import MGrid, SimulationError, ThresholdQuorumSystem
from repro.simulation import (
    FaultInjector,
    FaultScenario,
    ReplicatedRegister,
    run_workload,
)


@pytest.fixture
def small_system():
    """The 7-of-9 threshold system: a 2-masking system small enough for fast runs."""
    return ThresholdQuorumSystem(9, 7)


class TestRegisterDeployment:
    def test_rejects_too_many_byzantine_servers(self, small_system, rng):
        scenario = FaultScenario(byzantine=frozenset({0, 1, 2}))
        with pytest.raises(SimulationError):
            ReplicatedRegister(small_system, b=2, scenario=scenario, rng=rng)

    def test_overload_flag_allows_it(self, small_system, rng):
        scenario = FaultScenario(byzantine=frozenset({0, 1, 2}))
        register = ReplicatedRegister(
            small_system, b=2, scenario=scenario, rng=rng, allow_overload=True
        )
        assert register.scenario.num_byzantine == 3

    def test_rejects_unknown_servers_in_scenario(self, small_system, rng):
        scenario = FaultScenario(crashed=frozenset({99}))
        with pytest.raises(SimulationError):
            ReplicatedRegister(small_system, b=2, scenario=scenario, rng=rng)

    def test_clients_get_unique_ids(self, small_system, rng):
        register = ReplicatedRegister(small_system, b=2, rng=rng)
        assert register.client().client_id != register.client().client_id


class TestFaultFreeProtocol:
    def test_read_your_write(self, small_system, rng):
        register = ReplicatedRegister(small_system, b=2, rng=rng)
        client = register.client()
        assert client.write("hello").success
        result = client.read()
        assert result.success
        assert result.value == "hello"

    def test_reads_see_other_clients_writes(self, small_system, rng):
        register = ReplicatedRegister(small_system, b=2, rng=rng)
        writer, reader = register.client(), register.client()
        writer.write("from-writer")
        assert reader.read().value == "from-writer"

    def test_successive_writes_increase_timestamps(self, small_system, rng):
        register = ReplicatedRegister(small_system, b=2, rng=rng)
        client = register.client()
        first = client.write("a")
        second = client.write("b")
        assert second.timestamp > first.timestamp

    def test_correct_replicas_converge_on_written_quorum(self, small_system, rng):
        register = ReplicatedRegister(small_system, b=2, rng=rng)
        client = register.client()
        result = client.write("x")
        pairs = register.correct_replica_pairs()
        holders = [sid for sid, pair in pairs.items() if pair.value == "x"]
        assert set(result.quorum) <= set(holders)

    def test_initial_read_returns_initial_value(self, small_system, rng):
        register = ReplicatedRegister(small_system, b=2, initial_value="empty", rng=rng)
        assert register.client().read().value == "empty"


class TestByzantineMasking:
    @pytest.mark.parametrize(
        "behaviour", ["fabricate-timestamp", "forge-on-read", "stale", "random-value"]
    )
    def test_b_byzantine_servers_cannot_corrupt_reads(self, small_system, rng, behaviour):
        injector = FaultInjector(small_system.universe, rng)
        scenario = injector.exact(num_byzantine=2)
        register = ReplicatedRegister(
            small_system, b=2, scenario=scenario, byzantine_behaviour=behaviour, rng=rng
        )
        client = register.client()
        for round_index in range(5):
            value = ("v", round_index)
            client.write(value)
            result = client.read()
            assert result.success
            assert result.value == value

    def test_beyond_the_bound_the_adversary_can_win(self, small_system, rng):
        # With 2b+1 = 5 colluding forgers, forged pairs reach the b+1
        # vouching threshold with a timestamp the writer never saw, and reads
        # return the forged value.
        injector = FaultInjector(small_system.universe, rng)
        scenario = injector.exact(num_byzantine=5)
        register = ReplicatedRegister(
            small_system,
            b=2,
            scenario=scenario,
            byzantine_behaviour="forge-on-read",
            rng=rng,
            allow_overload=True,
        )
        client = register.client()
        client.write("honest")
        corrupted = any(client.read().value != "honest" for _ in range(10))
        assert corrupted

    def test_workload_runner_reports_no_violations_at_the_bound(self, small_system, rng):
        injector = FaultInjector(small_system.universe, rng)
        scenario = injector.exact(num_byzantine=2, num_crashed=1)
        result = run_workload(
            small_system, b=2, num_operations=80, scenario=scenario, rng=rng
        )
        assert result.consistency_violations == 0
        assert result.successful_writes > 0
        assert result.successful_reads > 0


class TestCrashAvailability:
    def test_crashing_below_resilience_keeps_service_available(self, small_system, rng):
        # f = MT - 1 = 2 crashes are always survivable.
        injector = FaultInjector(small_system.universe, rng)
        scenario = injector.exact(num_byzantine=0, num_crashed=2)
        result = run_workload(
            small_system, b=2, num_operations=60, scenario=scenario, rng=rng
        )
        assert result.availability == pytest.approx(1.0)

    def test_crashing_a_transversal_makes_operations_fail(self, small_system, rng):
        # Crashing n - k + 1 = 3 specific servers can hit every quorum; with
        # a threshold system ANY 3 crashes do.
        scenario = FaultScenario(crashed=frozenset({0, 1, 2}))
        register = ReplicatedRegister(small_system, b=2, scenario=scenario, rng=rng)
        client = register.client(max_attempts=5)
        assert not client.write("doomed").success
        assert not client.read().success

    def test_workload_under_heavy_crashes_reports_failures(self, small_system, rng):
        scenario = FaultScenario(crashed=frozenset({0, 1, 2, 3}))
        result = run_workload(
            small_system, b=2, num_operations=30, scenario=scenario, rng=rng
        )
        assert result.failed_operations == 30
        assert result.availability == 0.0


class TestEmpiricalLoad:
    def test_empirical_load_tracks_analytic_load(self, rng):
        system = MGrid(5, 1)
        result = run_workload(system, b=1, num_operations=400, rng=rng)
        # The MGrid strategy is uniform over quorums, whose induced load is
        # c/n; the empirical busiest-server frequency should be close.
        assert result.empirical_load == pytest.approx(system.load(), abs=0.12)

    def test_per_server_loads_sum_to_expected_quorum_size(self, small_system, rng):
        result = run_workload(small_system, b=2, num_operations=200, rng=rng)
        total = sum(result.per_server_load.values())
        assert total == pytest.approx(small_system.min_quorum_size(), rel=0.15)

    def test_runner_validates_arguments(self, small_system, rng):
        with pytest.raises(SimulationError):
            run_workload(small_system, b=2, num_operations=0, rng=rng)
        with pytest.raises(SimulationError):
            run_workload(small_system, b=2, num_operations=10, write_fraction=1.5, rng=rng)
