"""Unit tests for the crumbling-wall regular quorum system."""

from __future__ import annotations

import pytest

from repro import ConstructionError, CrumblingWall, boost_masking, exact_load


class TestConstruction:
    def test_rejects_empty_or_invalid_rows(self):
        with pytest.raises(ConstructionError):
            CrumblingWall([])
        with pytest.raises(ConstructionError):
            CrumblingWall([2, 0, 1])

    def test_universe_size(self):
        wall = CrumblingWall([1, 2, 3])
        assert wall.n == 6
        assert wall.num_rows == 3

    def test_quorum_count_formula(self):
        # Row i contributes prod of widths below it.
        wall = CrumblingWall([1, 2, 3, 4])
        assert wall.num_quorums() == 2 * 3 * 4 + 3 * 4 + 4 + 1
        assert wall.num_quorums() == len(wall.quorums())

    def test_is_a_valid_quorum_system(self):
        CrumblingWall([2, 3, 2]).to_explicit().validate()

    def test_quorum_shape(self):
        wall = CrumblingWall([1, 2])
        quorums = set(wall.quorums())
        assert frozenset({(0, 0), (1, 0)}) in quorums
        assert frozenset({(0, 0), (1, 1)}) in quorums
        assert frozenset({(1, 0), (1, 1)}) in quorums


class TestMeasures:
    def test_min_quorum_size(self):
        wall = CrumblingWall([3, 1, 2])
        # Best row: row 1 (width 1) plus one representative from row 2.
        assert wall.min_quorum_size() == 2
        assert wall.to_explicit().min_quorum_size() == 2

    def test_min_transversal_bottom_row_of_width_one(self):
        wall = CrumblingWall([3, 2, 1])
        assert wall.min_transversal_size() == 1
        assert wall.to_explicit().min_transversal_size() == 1

    def test_min_transversal_general(self):
        wall = CrumblingWall([1, 2, 3])
        assert wall.min_transversal_size() == wall.to_explicit().min_transversal_size()

    def test_regular_system_masks_nothing(self):
        assert CrumblingWall([2, 2, 2]).masking_bound() == 0

    def test_load_via_lp(self):
        # The singleton top row is a bottleneck candidate but the LP can
        # spread access across the lower courses.
        wall = CrumblingWall([1, 2, 2])
        result = exact_load(wall)
        assert 0.0 < result.load <= 1.0

    def test_sampling(self, rng):
        wall = CrumblingWall([2, 3, 2])
        quorums = set(wall.quorums())
        for _ in range(5):
            assert wall.sample_quorum(rng) in quorums


class TestBoostingIntegration:
    def test_boosted_wall_is_masking(self):
        wall = CrumblingWall([1, 2, 3])
        boosted = boost_masking(wall, 1)
        assert boosted.is_b_masking(1)
        assert boosted.n == 30
