"""Conformance-layer tests: the check algebra and the load/availability math.

:mod:`repro.analysis.conformance` turns "empirical metric vs paper bound"
into reusable assertions.  These tests pin the algebra (directions, slack,
margins, ``require`` raising) and the two mathematical facts the load checks
stand on:

* the restricted induced load of any crash set is at least the LP value
  ``L(Q)`` — restricting the quorum family only shrinks the feasible set of
  the Definition 3.8 LP; and
* the worst case over all crash sets of size up to ``b`` dominates every
  individual one and grows with the budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGrid, majority
from repro.analysis import (
    ConformanceCheck,
    ConformanceReport,
    availability_conformance,
    masking_conformance,
    percolation_conformance,
    restricted_induced_loads,
    worst_case_induced_load,
)
from repro.core.load import exact_load
from repro.exceptions import (
    ComputationError,
    ConformanceError,
    InvalidParameterError,
)
from repro.simulation import run_scenario
from repro.simulation.engine import resolve_strategy


@pytest.fixture
def system():
    return MGrid(5, 1)


# ----------------------------------------------------------------------
# The check algebra.
# ----------------------------------------------------------------------
class TestCheckAlgebra:
    def test_upper_bound_direction(self):
        assert ConformanceCheck("m", observed=0.5, bound=0.6).ok
        assert not ConformanceCheck("m", observed=0.7, bound=0.6).ok
        assert ConformanceCheck("m", observed=0.7, bound=0.6, slack=0.2).ok

    def test_lower_bound_direction(self):
        check = ConformanceCheck("m", observed=0.5, bound=0.6, direction=">=")
        assert not check.ok
        assert ConformanceCheck(
            "m", observed=0.5, bound=0.6, direction=">=", slack=0.15
        ).ok

    def test_margin_is_signed_distance_from_slackened_bound(self):
        check = ConformanceCheck("m", observed=0.5, bound=0.6, slack=0.1)
        assert check.margin == pytest.approx(0.2)
        failing = ConformanceCheck("m", observed=0.9, bound=0.6)
        assert failing.margin == pytest.approx(-0.3)

    def test_require_raises_with_context(self):
        check = ConformanceCheck("load", observed=0.9, bound=0.6, detail="why")
        with pytest.raises(ConformanceError, match="load.*why"):
            check.require()
        ConformanceCheck("load", observed=0.5, bound=0.6).require()  # no raise

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ConformanceCheck("m", observed=0.5, bound=0.6, direction="<")
        with pytest.raises(InvalidParameterError):
            ConformanceCheck("m", observed=0.5, bound=0.6, slack=-0.1)

    def test_report_collects_failures_and_lookups(self):
        good = ConformanceCheck("a", observed=0.1, bound=0.2)
        bad = ConformanceCheck("b", observed=0.3, bound=0.2)
        report = ConformanceReport(checks=(good, bad))
        assert not report.ok
        assert report.failures == (bad,)
        assert report.check("a") is good
        with pytest.raises(InvalidParameterError):
            report.check("missing")
        with pytest.raises(ConformanceError):
            report.require()

    def test_to_dict_is_json_stable(self):
        import json

        report = ConformanceReport(
            checks=(ConformanceCheck("a", observed=0.1, bound=0.2, detail="d"),)
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["checks"][0]["metric"] == "a"
        assert payload["checks"][0]["observed"] == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Restricted / worst-case load math.
# ----------------------------------------------------------------------
class TestLoadBounds:
    def test_empty_crash_set_recovers_the_strategy_load(self, system):
        strategy = resolve_strategy(system, None)
        loads = restricted_induced_loads(strategy, system.universe, [frozenset()])
        assert loads[0] == pytest.approx(exact_load(system).load)

    def test_restriction_never_beats_the_lp(self, system):
        """L(restricted) >= L(Q): the LP optimises over every strategy, and
        conditioning on surviving quorums is just another strategy."""
        strategy = resolve_strategy(system, None)
        lp = exact_load(system).load
        universe = system.universe
        singles = [frozenset([server]) for server in universe.elements]
        loads = restricted_induced_loads(strategy, universe, singles)
        assert np.all(loads[~np.isnan(loads)] >= lp - 1e-12)

    def test_total_wipeout_yields_nan(self, system):
        strategy = resolve_strategy(system, None)
        loads = restricted_induced_loads(
            strategy, system.universe, [frozenset(system.universe.elements)]
        )
        assert np.isnan(loads[0])

    def test_worst_case_grows_with_the_budget(self, system):
        strategy = resolve_strategy(system, None)
        b0 = worst_case_induced_load(system, strategy, b=0)
        b1 = worst_case_induced_load(system, strategy, b=1)
        b2 = worst_case_induced_load(system, strategy, b=2)
        assert b0 == pytest.approx(exact_load(system).load)
        assert b0 <= b1 <= b2 <= 1.0

    def test_worst_case_respects_the_enumeration_limit(self, system):
        with pytest.raises(ComputationError):
            worst_case_induced_load(system, b=10, limit=100)
        with pytest.raises(InvalidParameterError):
            worst_case_induced_load(system, b=-1)


# ----------------------------------------------------------------------
# Availability and masking checks.
# ----------------------------------------------------------------------
class TestAvailabilityAndMasking:
    def test_availability_brackets_the_analytic_fp(self):
        system = majority(9)
        report = availability_conformance(0.1, system, p=0.3, trials=200)
        upper = report.check("failure-rate-upper")
        lower = report.check("failure-rate-lower")
        assert upper.bound == lower.bound  # both anchored at the same Fp
        assert upper.slack > 0

    def test_availability_flags_an_impossible_rate(self):
        system = majority(9)
        report = availability_conformance(0.9, system, p=0.1, trials=10_000)
        assert not report.ok
        assert report.check("failure-rate-upper") in report.failures

    def test_masking_on_a_clean_run(self, system):
        result = run_scenario(
            system, b=1, num_operations=100, rng=np.random.default_rng(0)
        )
        report = masking_conformance(result, b=1)
        report.require()
        # A plain (non-adversarial) result carries no rounds, so there is no
        # byzantine-budget check to make.
        assert {check.metric for check in report.checks} == {
            "fabricated-reads",
            "stale-read-rate",
        }

    def test_percolation_conformance_end_to_end(self, system):
        result, report = percolation_conformance(
            system, p=0.15, phases=120, operations_per_phase=3, seed=5
        )
        report.require()
        assert result.operations == 360

    def test_percolation_conformance_validates_inputs(self, system):
        with pytest.raises(InvalidParameterError):
            percolation_conformance(system, p=0.15, operations_per_phase=0)
