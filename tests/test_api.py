"""Tests for the facade (`repro.api`): registry, measures, workloads, CLI.

The acceptance gates of the facade PR:

* registry round-trip — ``SystemSpec -> build -> spec_of`` is the identity
  on canonical specs, and specs survive a JSON round-trip;
* dispatch agreement — ``measure(..., method="auto")`` agrees with the
  forced ``exact`` and ``analytic`` paths to 1e-9 across the small-n
  matrix (the same guarantee the PR-4 cross-validation established for
  the paths themselves);
* engine agreement — one ``WorkloadSpec`` run on both engines yields
  ``WorkloadReport`` objects with identical schema and coordinates, and
  statistically consistent measurements;
* CLI smoke — ``python -m repro measure grid --n 25 --json`` and friends
  work end to end as subprocesses;
* the ``InvalidParameterError`` contract — one exception type for bad
  user arguments, registry-wide, catchable as both ``ComputationError``
  and ``ValueError``.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro import analytic_load, exact_failure_probability, exact_load
from repro.api import (
    Budget,
    SystemSpec,
    WorkloadReport,
    WorkloadSpec,
    available_constructions,
    available_measures,
    available_scenarios,
    build,
    measure,
    run,
    spec_of,
)
from repro.core.quorum_system import ExplicitQuorumSystem, ImplicitQuorumSystem
from repro.exceptions import (
    ComputationError,
    ConstructionError,
    InvalidParameterError,
)

#: One canonical small instance per registered construction.
SMALL_INSTANCES = {
    "threshold": {"n": 16, "b": 3},
    "majority": {"n": 9},
    "grid": {"side": 4},
    "masking-grid": {"side": 4, "b": 1},
    "mgrid": {"side": 4, "b": 1},
    "mpath": {"side": 4, "b": 1},
    "rt": {"depth": 2},
    "boostfpp": {"q": 2, "b": 1},
    "fpp": {"q": 3},
    "crumbling-wall": {"rows": [3, 4, 5]},
    "tree": {"depth": 2},
    "wheel": {"n": 8},
}


class TestRegistry:
    def test_catalogue_is_complete(self):
        # Every construction module is reachable by name — including tree
        # and wheel, which used to need a direct import.
        assert set(SMALL_INSTANCES) == set(available_constructions())

    @pytest.mark.parametrize("name", sorted(SMALL_INSTANCES))
    def test_spec_round_trip(self, name):
        system = build(name, **SMALL_INSTANCES[name])
        spec = spec_of(system)
        rebuilt = build(spec)
        assert spec_of(rebuilt) == spec
        assert rebuilt.n == system.n
        if system.enumerates_all_quorums:  # M-Path only enumerates a sub-family
            assert set(rebuilt.quorums()) == set(system.quorums())

    @pytest.mark.parametrize("name", sorted(SMALL_INSTANCES))
    def test_spec_json_round_trip(self, name):
        spec = spec_of(build(name, **SMALL_INSTANCES[name]))
        payload = json.loads(json.dumps(spec.to_dict()))
        assert SystemSpec.from_dict(payload) == spec
        assert spec_of(SystemSpec.from_dict(payload).build()) == spec

    def test_raw_threshold_specs_round_trip(self):
        # A raw high threshold has no masking form (4b < n fails); spec_of
        # must fall back to "k" so the spec stays buildable.
        raw = build("threshold", n=9, k=8)
        spec = spec_of(raw)
        assert spec.params == {"n": 9, "k": 8}
        assert build(spec).k == 8

    def test_specs_are_hashable(self):
        specs = {
            spec_of(build(name, **SMALL_INSTANCES[name]))
            for name in SMALL_INSTANCES
        }
        assert spec_of(build("crumbling-wall", rows=[3, 4, 5])) in specs
        # list vs tuple params hash and compare identically
        assert hash(SystemSpec("crumbling-wall", {"rows": [3, 4, 5]})) == hash(
            SystemSpec("crumbling-wall", {"rows": (3, 4, 5)})
        )

    def test_n_alias_for_grid_shapes(self):
        assert build("grid", n=25).side == 5
        assert build("mgrid", n=49, b=3).side == 7
        with pytest.raises(InvalidParameterError):
            build("grid", n=24)
        with pytest.raises(InvalidParameterError):
            build("grid", n=25, side=5)

    def test_implicit_systems_resolve_to_base_spec(self):
        implicit = ImplicitQuorumSystem(build("mgrid", side=5, b=1), num_samples=16)
        assert spec_of(implicit) == spec_of(build("mgrid", side=5, b=1))

    def test_unknown_names_and_params_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown construction"):
            build("paxos", n=5)
        with pytest.raises(InvalidParameterError, match="does not take"):
            build("wheel", n=5, side=3)
        with pytest.raises(InvalidParameterError, match="requires parameter"):
            build("fpp")
        with pytest.raises(InvalidParameterError):
            build("mgrid", side=4.5, b=1)

    def test_infeasible_shapes_keep_construction_error(self):
        # Shape infeasibility is the construction's own domain, not an
        # argument-validation problem.
        with pytest.raises(ConstructionError):
            build("mgrid", side=4, b=10)

    def test_explicit_systems_have_no_spec(self):
        explicit = ExplicitQuorumSystem([0, 1, 2], [[0, 1], [1, 2], [0, 2]])
        with pytest.raises(InvalidParameterError):
            spec_of(explicit)


class TestInvalidParameterContract:
    """Satellite: one exception type for the same user error, registry-wide."""

    @pytest.mark.parametrize("name", sorted(SMALL_INSTANCES))
    def test_bad_crash_probability_is_invalid_parameter(self, name):
        system = build(name, **SMALL_INSTANCES[name])
        estimator = getattr(system, "crash_probability", None)
        if estimator is None:
            pytest.skip(f"{name} has no crash_probability method")
        with pytest.raises(InvalidParameterError) as excinfo:
            estimator(1.5)
        # The unified type is catchable under both historic conventions.
        assert isinstance(excinfo.value, ComputationError)
        assert isinstance(excinfo.value, ValueError)

    def test_facade_validation_uses_the_same_type(self):
        for trigger in (
            lambda: measure("mgrid", "fp", side=4, b=1, p=1.5),
            lambda: measure("mgrid", "fp", side=4, b=1),  # missing p
            lambda: measure("mgrid", "nonsense", side=4, b=1),
            lambda: measure("mgrid", "load", side=4, b=1, method="psychic"),
            lambda: Budget(trials=0),
            lambda: WorkloadSpec(system="grid", params={"side": 4}, operations=0),
            lambda: run(
                WorkloadSpec(system="grid", params={"side": 4}, scenario="nope")
            ),
        ):
            with pytest.raises(InvalidParameterError):
                trigger()


class TestMeasureDispatch:
    # Constructions where all three of {auto, exact, analytic} apply at
    # small n (the PR-4 cross-validation matrix shapes).
    AGREEMENT_MATRIX = [
        ("threshold", {"n": 16, "b": 3}),
        ("grid", {"side": 4}),
        ("masking-grid", {"side": 4, "b": 1}),
        ("mgrid", {"side": 4, "b": 1}),
        ("rt", {"depth": 2}),
        ("crumbling-wall", {"rows": [3, 4, 5]}),
        ("fpp", {"q": 3}),
    ]

    @pytest.mark.parametrize("name,params", AGREEMENT_MATRIX)
    def test_auto_load_agrees_with_forced_paths(self, name, params):
        auto = measure(name, "load", **params)
        exact = measure(name, "load", method="exact", **params)
        assert auto.value == pytest.approx(exact.value, abs=1e-9)
        assert auto.method_requested == "auto"
        assert exact.method_used == "lp"
        try:
            analytic = measure(name, "load", method="analytic", **params)
        except ComputationError:
            return  # no closed form: auto resolved to the LP, already checked
        assert auto.value == pytest.approx(analytic.value, abs=1e-9)
        assert auto.method_used == analytic.method_used

    @pytest.mark.parametrize("name,params", AGREEMENT_MATRIX)
    @pytest.mark.parametrize("p", [0.05, 0.2])
    def test_auto_fp_agrees_with_forced_paths(self, name, params, p):
        auto = measure(name, "fp", p=p, **params)
        exact = measure(name, "fp", method="exact", p=p, **params)
        analytic = measure(name, "fp", method="analytic", p=p, **params)
        assert auto.value == pytest.approx(exact.value, abs=1e-9)
        assert auto.value == pytest.approx(analytic.value, abs=1e-9)
        assert auto.error_bound == 0.0

    def test_auto_matches_legacy_entry_points_bitwise(self):
        # The facade is a router, not a recomputation: identical floats.
        system = build("mgrid", side=4, b=1)
        assert measure(system, "load").value == analytic_load(system).load
        assert (
            measure(system, "load", method="exact").value
            == exact_load(system).load
        )
        assert (
            measure(system, "fp", method="exact", p=0.1).value
            == exact_failure_probability(system, 0.1).value
        )

    def test_availability_is_complement_of_fp(self):
        fp = measure("rt", "fp", depth=2, p=0.15)
        availability = measure("rt", "availability", depth=2, p=0.15)
        assert availability.value == pytest.approx(1.0 - fp.value, abs=1e-12)

    def test_sampled_fp_reports_uncertainty(self):
        result = measure(
            "wheel", "fp", n=8, p=0.2, method="sampled", budget=Budget(trials=5000)
        )
        assert result.method_used == "monte-carlo"
        assert result.error_bound > 0.0
        exact = measure("wheel", "fp", n=8, p=0.2, method="exact")
        assert abs(result.value - exact.value) <= 5 * result.error_bound

    def test_construction_sampler_fp_has_finite_error_bound(self):
        # Constructions with their own crash-pattern sampler (grid family)
        # are unbiased MC estimates, not bounds: finite half-width.
        result = measure(
            "grid", "fp", n=25, p=0.1, method="sampled", budget=Budget(trials=5000)
        )
        assert result.method_used == "monte-carlo"
        assert np.isfinite(result.error_bound) and result.error_bound > 0.0
        exact = measure("grid", "fp", n=25, p=0.1, method="analytic")
        assert abs(result.value - exact.value) <= 6 * result.error_bound

    def test_to_dict_is_strict_json(self):
        # Infinite error bounds (bound-only results) must serialise as null,
        # not Python's non-RFC "Infinity" token.
        bound_only = measure(
            "mgrid", "load", side=5, b=1, method="sampled",
            budget=Budget(num_samples=64),
        )
        assert bound_only.error_bound == float("inf")
        payload = json.dumps(bound_only.to_dict())
        assert "Infinity" not in payload
        assert json.loads(payload)["error_bound"] is None

    def test_sampled_load_is_an_upper_bound(self):
        exact = measure("mgrid", "load", side=5, b=1, method="exact")
        sampled = measure(
            "mgrid", "load", side=5, b=1, method="sampled",
            budget=Budget(num_samples=128, seed=3),
        )
        assert sampled.method_used == "sampled-lp"
        assert sampled.value >= exact.value - 1e-9

    def test_budget_steers_auto_to_sampled(self):
        # Tree(depth=2) has 15 quorums and no closed form; a 5-quorum budget
        # pushes auto past analytic and exact onto the sampled fallback.
        result = measure("tree", "load", depth=2, budget=Budget(max_quorums=5))
        assert result.method_used == "sampled-lp"
        assert result.method_requested == "auto"

    def test_large_n_resolves_analytically(self):
        result = measure("mgrid", "fp", side=100, b=3, p=0.01)
        assert result.n == 10_000
        assert result.method_used == "analytic"
        assert result.error_bound == 0.0

    def test_combinatorial_measures(self):
        system = build("masking-grid", side=4, b=1)
        for name, reference in [
            ("masking", system.masking_bound()),
            ("resilience", system.resilience()),
            ("min-quorum", system.min_quorum_size()),
            ("intersection", system.min_intersection_size()),
            ("transversal", system.min_transversal_size()),
        ]:
            result = measure("masking-grid", name, side=4, b=1)
            assert result.value == reference, name
            assert result.method_used == "combinatorial"
        assert measure("masking-grid", "masking", side=4, b=1).value >= 1

    def test_measures_catalogue(self):
        assert set(available_measures()) >= {
            "load", "fp", "availability", "masking", "resilience",
        }


class TestUnifiedWorkloads:
    def test_engine_auto_picks_vectorized_for_untimed(self):
        report = run(
            WorkloadSpec(
                system="mgrid", params={"side": 4, "b": 1},
                scenario="iid-crash", operations=100, seed=5,
            )
        )
        assert report.engine == "vectorized"
        assert report.latency_p50 is None
        assert report.consistent

    def test_engine_auto_picks_event_for_timed(self):
        report = run(
            WorkloadSpec(
                system="threshold", params={"n": 10, "b": 1},
                scenario="slow-servers", operations=40, seed=5,
            )
        )
        assert report.engine == "event"
        assert report.latency_p50 is not None and report.latency_p50 > 0.0
        assert report.duration is not None and report.duration > 0.0

    def test_forcing_vectorized_on_timed_scenario_fails(self):
        spec = WorkloadSpec(
            system="threshold", params={"n": 10, "b": 1},
            scenario="flaky-links", operations=40,
        )
        with pytest.raises(InvalidParameterError, match="event"):
            run(spec, engine="vectorized")

    def test_reports_share_one_schema(self):
        spec = WorkloadSpec(
            system="mgrid", params={"side": 4, "b": 1}, operations=120,
            clients=4, seed=9,
        )
        vectorized = run(spec, engine="vectorized")
        event = run(spec, engine="event")
        assert tuple(vectorized.to_dict()) == WorkloadReport.SCHEMA
        assert tuple(event.to_dict()) == WorkloadReport.SCHEMA
        json.dumps(vectorized.to_dict())
        json.dumps(event.to_dict())

    def test_engines_agree_on_shared_seed(self):
        # The satellite's field-agreement gate, via the facade-level
        # cross-check in analysis/empirical.
        from repro.analysis.empirical import engine_agreement

        agreement = engine_agreement(
            WorkloadSpec(
                system="mgrid", params={"side": 4, "b": 1},
                operations=400, clients=4, seed=11,
            )
        )
        assert agreement.mismatched_fields == ()
        assert agreement.vectorized.availability == agreement.event.availability == 1.0
        assert agreement.ok(availability_tol=0.0, load_tol=0.05)

    def test_engines_agree_under_byzantine_faults(self):
        from repro.analysis.empirical import engine_agreement

        agreement = engine_agreement(
            WorkloadSpec(
                system="threshold", params={"n": 12, "b": 2},
                scenario="byzantine", operations=300, seed=4,
            )
        )
        assert agreement.mismatched_fields == ()
        assert agreement.vectorized.consistency_violations == 0
        assert agreement.event.consistency_violations == 0

    def test_large_universe_switches_to_sampled_mode(self):
        report = run(
            WorkloadSpec(
                system="mgrid", params={"n": 4096}, operations=400, seed=1,
            )
        )
        assert report.sampled
        assert report.n == 4096
        assert report.availability == 1.0
        assert report.spec == {"construction": "mgrid", "params": {"b": 1, "side": 64}}

    def test_small_systems_stay_exact(self):
        report = run(
            WorkloadSpec(system="grid", params={"side": 4}, operations=50, seed=2)
        )
        assert not report.sampled

    def test_deterministic_in_seed(self):
        spec = WorkloadSpec(
            system="rt", params={"depth": 2}, scenario="iid-crash",
            operations=150, seed=21,
        )
        assert run(spec).to_dict() == run(spec).to_dict()

    def test_prebuilt_system_and_explicit_b(self):
        system = build("mgrid", side=4, b=1)
        report = run(WorkloadSpec(system=system, b=1, operations=60, seed=3))
        assert report.b == 1
        assert report.spec is not None

    def test_scenario_catalogue_is_documented(self):
        catalogue = available_scenarios()
        assert {"fault-free", "crash", "iid-crash", "byzantine",
                "slow-servers", "crash-recover"} <= set(catalogue)


class TestLegacyWrappers:
    """The pre-facade entry points stay as thin delegating paths."""

    def test_run_workload_still_works(self):
        from repro.simulation.runner import run_workload

        result = run_workload(
            build("mgrid", side=4, b=1), b=1, num_operations=50,
            rng=np.random.default_rng(0),
        )
        assert result.operations == 50

    def test_selector_includes_regular_systems_at_b0(self):
        from repro.analysis.selector import candidate_constructions

        names = [system.name for system in candidate_constructions(31, 0)]
        assert any(name.startswith("Wheel") for name in names)
        assert any(name.startswith("TreeQuorum") for name in names)
        # ...and they stay out of masking comparisons.
        names_b3 = [system.name for system in candidate_constructions(64, 3)]
        assert not any("Wheel" in name or "Tree" in name for name in names_b3)


class TestCLI:
    def _invoke(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_measure_grid_json(self):
        completed = self._invoke("measure", "grid", "--n", "25", "--json")
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["value"] == pytest.approx(0.36)
        assert payload["measure"] == "load"
        assert payload["method_used"] == "analytic"

    def test_measure_fp_matches_library(self):
        completed = self._invoke(
            "measure", "mgrid", "--side", "4", "--b", "1",
            "--measure", "fp", "--p", "0.1", "--json",
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        expected = measure("mgrid", "fp", side=4, b=1, p=0.1).value
        assert payload["value"] == pytest.approx(expected, abs=1e-12)

    def test_run_emits_schema_stable_report(self):
        completed = self._invoke(
            "run", "--construction", "mgrid", "--side", "4", "--b", "1",
            "--scenario", "crash", "--ops", "60", "--json",
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert tuple(payload) == WorkloadReport.SCHEMA

    def test_list_and_table_and_compare(self):
        listed = self._invoke("list", "--json")
        assert listed.returncode == 0, listed.stderr
        catalogue = json.loads(listed.stdout)
        assert set(catalogue["constructions"]) == set(available_constructions())

        table = self._invoke("table", "--n", "64", "--p", "0.125", "--json")
        assert table.returncode == 0, table.stderr
        assert len(json.loads(table.stdout)) >= 4

        compared = self._invoke(
            "compare", "grid", "mgrid", "--n", "16", "--b", "1",
            "--p", "0.1", "--json",
        )
        assert compared.returncode == 0, compared.stderr
        rows = json.loads(compared.stdout)
        assert [row["construction"] for row in rows] == ["grid", "mgrid"]

    def test_argument_errors_exit_2(self):
        completed = self._invoke("measure", "mgrid", "--n", "24", "--json")
        assert completed.returncode == 2
        assert "perfect square" in completed.stderr
