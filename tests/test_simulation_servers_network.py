"""Unit tests for replicas (correct and Byzantine) and the synchronous network."""

from __future__ import annotations

import pytest

from repro import SimulationError
from repro.simulation import (
    BYZANTINE_BEHAVIOURS,
    ByzantineReplicaServer,
    FaultScenario,
    ReplicaServer,
    SynchronousNetwork,
    Timestamp,
    ValueTimestampPair,
)
from repro.simulation.messages import ReadRequest, TimestampRequest, WriteRequest


def write_request(value, counter, client_id=0):
    return WriteRequest(
        client_id=client_id,
        pair=ValueTimestampPair(value=value, timestamp=Timestamp(counter, client_id)),
    )


class TestCorrectReplica:
    def test_initial_state(self):
        server = ReplicaServer("s0", initial_value="init")
        assert server.current_pair.value == "init"
        assert server.current_pair.timestamp == Timestamp.zero()

    def test_write_then_read(self):
        server = ReplicaServer("s0")
        ack = server.handle_write(write_request("v1", 1))
        assert ack.accepted
        reply = server.handle_read(ReadRequest(client_id=0))
        assert reply.pair.value == "v1"

    def test_stale_write_rejected(self):
        server = ReplicaServer("s0")
        server.handle_write(write_request("new", 5))
        ack = server.handle_write(write_request("old", 2))
        assert not ack.accepted
        assert server.current_pair.value == "new"

    def test_timestamp_query(self):
        server = ReplicaServer("s0")
        server.handle_write(write_request("v", 3))
        reply = server.handle_timestamp(TimestampRequest(client_id=1))
        assert reply.timestamp == Timestamp(3, 0)

    def test_access_counting(self):
        server = ReplicaServer("s0")
        server.handle_read(ReadRequest(client_id=0))
        server.handle_timestamp(TimestampRequest(client_id=0))
        server.handle_write(write_request("v", 1))
        assert server.access_count == 3


class TestByzantineReplica:
    def test_unknown_behaviour_rejected(self):
        with pytest.raises(SimulationError):
            ByzantineReplicaServer("s0", behaviour="explode")

    def test_behaviour_catalogue_is_complete(self):
        assert BYZANTINE_BEHAVIOURS == {
            "fabricate-timestamp", "forge-on-read", "stale", "random-value", "drop-writes",
        }

    def test_forge_on_read_keeps_timestamp_queries_honest(self):
        server = ByzantineReplicaServer("s0", behaviour="forge-on-read")
        server.handle_write(write_request("real", 3))
        assert server.handle_timestamp(TimestampRequest(client_id=0)).timestamp == Timestamp(3, 0)
        assert server.handle_read(ReadRequest(client_id=0)).pair.timestamp > Timestamp(10**6, 0)

    def test_fabricated_timestamps_are_enormous(self):
        server = ByzantineReplicaServer("s0", behaviour="fabricate-timestamp")
        reply = server.handle_read(ReadRequest(client_id=0))
        assert reply.pair.timestamp > Timestamp(10**6, 0)
        ts_reply = server.handle_timestamp(TimestampRequest(client_id=0))
        assert ts_reply.timestamp > Timestamp(10**6, 0)

    def test_colluders_agree_on_forged_value(self):
        first = ByzantineReplicaServer("a", collusion_token="forged")
        second = ByzantineReplicaServer("b", collusion_token="forged")
        assert (
            first.handle_read(ReadRequest(client_id=0)).pair
            == second.handle_read(ReadRequest(client_id=0)).pair
        )

    def test_stale_replica_ignores_writes_in_replies(self):
        server = ByzantineReplicaServer("s0", behaviour="stale", initial_value="old")
        server.handle_write(write_request("new", 9))
        assert server.handle_read(ReadRequest(client_id=0)).pair.value == "old"

    def test_random_value_replica_keeps_real_timestamp(self, rng):
        server = ByzantineReplicaServer("s0", behaviour="random-value", rng=rng)
        server.handle_write(write_request("real", 2))
        reply = server.handle_read(ReadRequest(client_id=0))
        assert reply.pair.value != "real"
        assert reply.pair.timestamp == Timestamp(2, 0)

    def test_drop_writes_replica_lies_about_acceptance(self):
        server = ByzantineReplicaServer("s0", behaviour="drop-writes", initial_value="init")
        ack = server.handle_write(write_request("v", 1))
        assert ack.accepted
        assert server.current_pair.value == "init"


class TestNetwork:
    def make_network(self, crashed=frozenset()):
        servers = {i: ReplicaServer(i) for i in range(3)}
        scenario = FaultScenario(crashed=frozenset(crashed))
        return SynchronousNetwork(servers, scenario), servers

    def test_empty_network_rejected(self):
        with pytest.raises(SimulationError):
            SynchronousNetwork({}, FaultScenario.fault_free())

    def test_send_and_reply(self):
        network, _ = self.make_network()
        reply = network.send(0, ReadRequest(client_id=0))
        assert reply.server_id == 0

    def test_crashed_server_is_silent(self):
        network, servers = self.make_network(crashed={1})
        assert network.send(1, ReadRequest(client_id=0)) is None
        # The request is still counted as delivered (the client sent it).
        assert network.delivery_counts[1] == 1
        # And the replica never processed it.
        assert servers[1].access_count == 0

    def test_unknown_server_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(SimulationError):
            network.send(99, ReadRequest(client_id=0))

    def test_unknown_request_type_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(SimulationError):
            network.send(0, "not-a-request")

    def test_broadcast_collects_all_replies(self):
        network, _ = self.make_network(crashed={2})
        replies = network.broadcast([0, 1, 2], ReadRequest(client_id=0))
        assert replies[0] is not None and replies[1] is not None
        assert replies[2] is None

    def test_attempted_vs_delivered_counters(self):
        # The accounting split: a probe of a crashed server is attempted but
        # never delivered, so the two counters diverge exactly there.
        network, _ = self.make_network(crashed={1})
        network.send(0, ReadRequest(client_id=0))
        network.send(1, ReadRequest(client_id=0))
        network.send(1, ReadRequest(client_id=0))
        assert network.attempted_counts == {0: 1, 1: 2, 2: 0}
        assert network.delivered_counts == {0: 1, 1: 0, 2: 0}
        # Backwards-compatible alias: delivery_counts is the attempted tally.
        assert network.delivery_counts == network.attempted_counts

    def test_empirical_message_rates(self):
        network, _ = self.make_network(crashed={1})
        network.send(0, ReadRequest(client_id=0))
        network.send(0, ReadRequest(client_id=0))
        network.send(1, ReadRequest(client_id=0))
        attempted = network.empirical_message_rates(2)
        delivered = network.empirical_message_rates(2, which="delivered")
        assert attempted[0] == pytest.approx(1.0)
        assert attempted[1] == pytest.approx(0.5)
        assert delivered[1] == pytest.approx(0.0)
        with pytest.raises(SimulationError):
            network.empirical_message_rates(0)
        with pytest.raises(SimulationError):
            network.empirical_message_rates(2, which="bogus")


class TestAccessCountParity:
    """Regression: Byzantine replicas used to double-count their accesses."""

    TRAFFIC = (
        TimestampRequest(client_id=0),
        ReadRequest(client_id=0),
        WriteRequest(
            client_id=0,
            pair=ValueTimestampPair(value="v", timestamp=Timestamp(1, 0)),
        ),
        ReadRequest(client_id=1),
        TimestampRequest(client_id=1),
    )

    @staticmethod
    def drive(server):
        handlers = {
            "TimestampRequest": server.handle_timestamp,
            "ReadRequest": server.handle_read,
            "WriteRequest": server.handle_write,
        }
        for request in TestAccessCountParity.TRAFFIC:
            handlers[type(request).__name__](request)

    @pytest.mark.parametrize("behaviour", sorted(BYZANTINE_BEHAVIOURS))
    def test_byzantine_counts_match_correct_under_identical_traffic(self, behaviour):
        correct = ReplicaServer("s0")
        byzantine = ByzantineReplicaServer("s1", behaviour=behaviour)
        self.drive(correct)
        self.drive(byzantine)
        assert correct.access_count == len(self.TRAFFIC)
        assert byzantine.access_count == correct.access_count
