"""Unit tests for GF(p), polynomial arithmetic, and GF(p^r)."""

from __future__ import annotations

import pytest

from repro import FieldError
from repro.gf import GaloisField, PrimeField, factor_prime_power, is_prime
from repro.gf import polynomial as poly


class TestPrimality:
    def test_small_primes(self):
        assert [n for n in range(2, 20) if is_prime(n)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_non_primes(self):
        for n in (-3, 0, 1, 4, 9, 15, 21, 25, 49):
            assert not is_prime(n)

    def test_factor_prime_power(self):
        assert factor_prime_power(8) == (2, 3)
        assert factor_prime_power(9) == (3, 2)
        assert factor_prime_power(7) == (7, 1)

    def test_factor_rejects_non_prime_powers(self):
        for n in (1, 6, 12, 100):
            with pytest.raises(FieldError):
                factor_prime_power(n)


class TestPrimeField:
    def test_rejects_composite_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(6)

    def test_basic_arithmetic(self):
        field = PrimeField(7)
        assert field.add(5, 4) == 2
        assert field.sub(2, 5) == 4
        assert field.mul(3, 5) == 1
        assert field.neg(3) == 4
        assert field.div(1, 3) == 5
        assert field.pow(3, 6) == 1  # Fermat

    def test_inverse(self):
        field = PrimeField(11)
        for value in range(1, 11):
            assert field.mul(value, field.inverse(value)) == 1

    def test_inverse_of_zero_rejected(self):
        with pytest.raises(FieldError):
            PrimeField(5).inverse(0)

    def test_negative_exponent(self):
        field = PrimeField(7)
        assert field.pow(3, -1) == field.inverse(3)

    def test_equality_and_hash(self):
        assert PrimeField(5) == PrimeField(5)
        assert PrimeField(5) != PrimeField(7)
        assert len({PrimeField(5), PrimeField(5)}) == 1


class TestPolynomials:
    field = PrimeField(3)

    def test_trim(self):
        assert poly.trim([1, 2, 0, 0]) == (1, 2)
        assert poly.trim([0, 0]) == ()

    def test_degree(self):
        assert poly.degree((1, 0, 2)) == 2
        assert poly.degree(()) == -1

    def test_add_sub(self):
        assert poly.add(self.field, (1, 2), (2, 1)) == ()
        assert poly.sub(self.field, (1, 2), (1, 2)) == ()
        assert poly.add(self.field, (1,), (0, 1)) == (1, 1)

    def test_mul(self):
        # (1 + x)(1 + 2x) = 1 + 3x + 2x^2 = 1 + 2x^2 over GF(3).
        assert poly.mul(self.field, (1, 1), (1, 2)) == (1, 0, 2)
        assert poly.mul(self.field, (), (1, 2)) == ()

    def test_divmod(self):
        dividend = poly.mul(self.field, (1, 1), (2, 1))
        quotient, remainder = poly.divmod_poly(self.field, dividend, (1, 1))
        assert remainder == ()
        assert quotient == (2, 1)

    def test_divmod_with_remainder(self):
        quotient, remainder = poly.divmod_poly(self.field, (1, 0, 1), (0, 1))
        assert quotient == (0, 1)
        assert remainder == (1,)

    def test_division_by_zero_rejected(self):
        with pytest.raises(FieldError):
            poly.divmod_poly(self.field, (1, 1), ())

    def test_irreducibility(self):
        field2 = PrimeField(2)
        assert poly.is_irreducible(field2, (1, 1, 1))      # x^2 + x + 1
        assert not poly.is_irreducible(field2, (1, 0, 1))  # x^2 + 1 = (x+1)^2
        assert poly.is_irreducible(field2, (1, 1))         # linear
        assert not poly.is_irreducible(field2, (1,))       # constant

    def test_find_irreducible(self):
        for p, r in ((2, 2), (2, 3), (3, 2), (5, 2)):
            field = PrimeField(p)
            found = poly.find_irreducible(field, r)
            assert poly.degree(found) == r
            assert poly.is_irreducible(field, found)

    def test_find_irreducible_invalid_degree(self):
        with pytest.raises(FieldError):
            poly.find_irreducible(self.field, 0)


class TestGaloisField:
    def test_prime_case_delegates(self):
        field = GaloisField(7)
        assert field.mul(3, 5) == 1
        assert field.extension_degree == 1

    def test_rejects_non_prime_power(self):
        with pytest.raises(FieldError):
            GaloisField(12)

    @pytest.mark.parametrize("order", [4, 8, 9, 16, 25])
    def test_field_axioms(self, order):
        field = GaloisField(order)
        elements = list(field.elements())
        # Multiplicative inverses exist and are correct for all non-zero elements.
        for value in elements[1:]:
            assert field.mul(value, field.inverse(value)) == 1
        # Additive group: every element has an additive inverse.
        for value in elements:
            assert field.add(value, field.neg(value)) == 0
        # Distributivity on a sample of triples.
        sample = elements[: min(len(elements), 5)]
        for a in sample:
            for b in sample:
                for c in sample:
                    left = field.mul(a, field.add(b, c))
                    right = field.add(field.mul(a, b), field.mul(a, c))
                    assert left == right

    def test_multiplicative_group_order(self):
        field = GaloisField(8)
        # Every non-zero element satisfies a^(q-1) = 1.
        for value in range(1, 8):
            assert field.pow(value, 7) == 1

    def test_inverse_of_zero_rejected(self):
        with pytest.raises(FieldError):
            GaloisField(4).inverse(0)

    def test_out_of_range_element_rejected(self):
        with pytest.raises(FieldError):
            GaloisField(4).mul(5, 1)

    def test_equality(self):
        assert GaloisField(4) == GaloisField(4)
        assert GaloisField(4) != GaloisField(8)
