"""Unit tests for the M-Grid construction (Section 5.1, Figure 1)."""

from __future__ import annotations

import math

import pytest

from repro import ConstructionError, MGrid, exact_load, load_lower_bound, verify_masking


class TestConstruction:
    def test_figure1_instance(self, mgrid_7_3):
        # Figure 1: n = 7x7, b = 3 -> 2 rows + 2 columns per quorum.
        assert mgrid_7_3.n == 49
        assert mgrid_7_3.k == 2
        assert mgrid_7_3.num_quorums() == math.comb(7, 2) ** 2

    def test_rejects_b_above_proposition_5_1_bound(self):
        with pytest.raises(ConstructionError):
            MGrid(7, 4)  # b must be <= (sqrt(n)-1)/2 = 3

    def test_rejects_quorums_that_do_not_fit(self):
        with pytest.raises(ConstructionError):
            MGrid(3, 3)

    def test_rejects_negative_b_and_tiny_side(self):
        with pytest.raises(ConstructionError):
            MGrid(7, -1)
        with pytest.raises(ConstructionError):
            MGrid(1, 0)

    def test_b_zero_is_a_regular_quorum_system(self):
        system = MGrid(4, 0)
        assert system.k == 1
        system.to_explicit().validate()


class TestMeasures:
    def test_analytic_values_match_enumeration(self, mgrid_7_3):
        explicit = mgrid_7_3.to_explicit()
        assert explicit.min_quorum_size() == mgrid_7_3.min_quorum_size() == 24
        assert explicit.min_intersection_size() == mgrid_7_3.min_intersection_size() == 8
        assert explicit.min_transversal_size() == mgrid_7_3.min_transversal_size() == 6

    def test_proposition_5_1_masking(self, mgrid_7_3):
        # The intersection 2(b+1) = 8 exceeds 2b+1 = 7 and MT = 6 >= b+1.
        verify_masking(mgrid_7_3, 3)
        assert mgrid_7_3.masking_bound() == 3
        assert not mgrid_7_3.is_b_masking(4)

    def test_proposition_5_2_load(self, mgrid_7_3):
        # Fair system: L = c/n ~ 2 sqrt(b+1)/sqrt(n).
        assert mgrid_7_3.load() == pytest.approx(24 / 49)
        assert exact_load(mgrid_7_3).load == pytest.approx(24 / 49, abs=1e-6)

    def test_load_is_optimal_up_to_constant(self):
        # Remark after Prop 5.2: within sqrt(2) (plus integrality slack) of
        # the Corollary 4.2 lower bound.
        for side, b in [(8, 3), (12, 5), (16, 7)]:
            system = MGrid(side, b)
            bound = load_lower_bound(system.n, b)
            assert system.load() <= 2.1 * bound

    def test_fairness(self, mgrid_7_3):
        size, _ = mgrid_7_3.to_explicit().fairness()
        assert size == 24

    def test_resilience_formula(self):
        # f = MT - 1 = side - ceil(sqrt(b+1)).
        for side, b in [(7, 3), (9, 3), (12, 5)]:
            system = MGrid(side, b)
            k = system.k
            assert system.min_transversal_size() - 1 == side - k


class TestAvailability:
    def test_crash_probability_lower_bound_formula(self):
        system = MGrid(6, 1)
        p = 0.2
        expected = (1 - 0.8 ** 6) ** 6
        assert system.crash_probability_lower_bound(p) == pytest.approx(expected)

    def test_monte_carlo_respects_lower_bound(self, rng):
        system = MGrid(8, 3)
        p = 0.2
        estimate = system.crash_probability(p, trials=4000, rng=rng)
        assert estimate >= system.crash_probability_lower_bound(p) - 0.03

    def test_fp_tends_to_one_with_n(self, rng):
        # The Section 5.1 weakness: availability degrades as the grid grows.
        small = MGrid(5, 1).crash_probability(0.25, trials=4000, rng=rng)
        large = MGrid(12, 1).crash_probability(0.25, trials=4000, rng=rng)
        assert large > small
        assert large > 0.8

    def test_extreme_probabilities(self, rng):
        system = MGrid(5, 1)
        assert system.crash_probability(0.0, trials=200, rng=rng) == 0.0
        assert system.crash_probability(1.0, trials=200, rng=rng) == 1.0
        with pytest.raises(Exception):
            system.crash_probability(1.5, trials=10, rng=rng)


class TestSampling:
    def test_sampled_quorum_is_a_quorum(self, mgrid_7_3, rng):
        quorum_set = set(mgrid_7_3.quorums())
        for _ in range(5):
            assert mgrid_7_3.sample_quorum(rng) in quorum_set

    def test_sampled_quorum_has_expected_size(self, rng):
        system = MGrid(9, 3)
        assert len(system.sample_quorum(rng)) == system.min_quorum_size()
