"""Tests for :mod:`repro.storage` — WAL, snapshots, crash recovery.

Three layers:

* unit tests for the fsync policy, record framing and the scan;
* a corruption fuzz suite: every crash-damage shape a real filesystem can
  leave (truncated tail, torn final frame, CRC bit-flip, duplicate and
  out-of-order records, empty file, foreign file, snapshot/WAL mismatch,
  corrupt snapshot) must be survived by dropping only the corrupt suffix —
  and nothing may ever raise past :class:`~repro.exceptions.StorageError`;
* a hypothesis property test: journal → recover round-trips arbitrary
  frozen JSON values under random fsync policies and compaction points.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.simulation.history import freeze_value
from repro.simulation.messages import Timestamp, ValueTimestampPair
from repro.storage import (
    DurableStore,
    FsyncPolicy,
    Snapshot,
    WriteAheadLog,
    read_snapshot,
    scan_wal,
    write_snapshot,
)
from repro.storage.snapshot import SNAPSHOT_MAGIC
from repro.storage.store import SNAPSHOT_NAME, WAL_NAME
from repro.storage.wal import MAGIC, MAX_RECORD_BYTES, encode_record
from repro.storage.wal import WalRecord as _WalRecord

_HEADER = struct.Struct("!II")


def _pair(counter: int, client_id: int = 0, value: object = None) -> ValueTimestampPair:
    return ValueTimestampPair(
        value=value if value is not None else f"v{counter}",
        timestamp=Timestamp(counter=counter, client_id=client_id),
    )


def _journal_n(store: DurableStore, n: int, *, start: int = 1) -> ValueTimestampPair:
    last = store.pair
    for counter in range(start, start + n):
        last = _pair(counter)
        store.journal(last)
    return last


# ----------------------------------------------------------------------------
# FsyncPolicy.
# ----------------------------------------------------------------------------
class TestFsyncPolicy:
    def test_parse_plain_modes(self):
        assert FsyncPolicy.parse("always").mode == "always"
        assert FsyncPolicy.parse("never").mode == "never"
        policy = FsyncPolicy.parse("interval")
        assert (policy.mode, policy.interval) == ("interval", 32)

    def test_parse_interval_with_count(self):
        policy = FsyncPolicy.parse("interval:7")
        assert (policy.mode, policy.interval) == ("interval", 7)
        assert str(policy) == "interval:7"

    def test_parse_is_idempotent_on_policies(self):
        policy = FsyncPolicy("never")
        assert FsyncPolicy.parse(policy) is policy

    @pytest.mark.parametrize(
        "spec", ["sometimes", "interval:x", "always:3", "interval:0", ""]
    )
    def test_bad_specs_raise_storage_error(self, spec):
        with pytest.raises(StorageError):
            FsyncPolicy.parse(spec)

    def test_str_round_trips(self):
        for spec in ("always", "never", "interval:5"):
            assert str(FsyncPolicy.parse(spec)) == spec


# ----------------------------------------------------------------------------
# WAL basics.
# ----------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_fresh_log_has_magic_and_no_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            assert wal.record_count == 0
            assert wal.last_seq == 0
        assert path.read_bytes() == MAGIC

    def test_append_then_scan_round_trips(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(Timestamp(1, 0), "a")
            wal.append(Timestamp(2, 1), ["b", 2])
        scan = scan_wal(path)
        assert scan.reason == ""
        assert scan.dropped_bytes == 0
        assert [(r.seq, r.timestamp, r.value) for r in scan.records] == [
            (1, Timestamp(1, 0), "a"),
            (2, Timestamp(2, 1), ("b", 2)),  # freeze_value: lists come back frozen
        ]

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(Timestamp(1, 0), "a")
        with WriteAheadLog(path) as wal:
            record = wal.append(Timestamp(2, 0), "b")
            assert record.seq == 2

    def test_reset_keeps_sequence_monotone(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(Timestamp(1, 0), "a")
            wal.reset()
            assert wal.record_count == 0
            assert wal.append(Timestamp(2, 0), "b").seq == 2
        assert len(scan_wal(path).records) == 1

    def test_unserialisable_value_raises_storage_error(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            with pytest.raises(StorageError):
                wal.append(Timestamp(1, 0), object())

    def test_oversize_record_raises_storage_error(self):
        record = _WalRecord(seq=1, timestamp=Timestamp(1, 0), value="x" * (MAX_RECORD_BYTES + 1))
        with pytest.raises(StorageError):
            encode_record(record)

    def test_interval_policy_batches_syncs(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync="interval:4") as wal:
            baseline = wal.sync_count  # the open itself syncs the magic
            for counter in range(1, 9):
                wal.append(Timestamp(counter, 0), counter)
            assert wal.sync_count - baseline == 2  # 8 appends / interval 4
            assert wal.unsynced_appends == 0

    def test_never_policy_still_persists_across_close(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append(Timestamp(1, 0), "a")
        # "never" skips fsync but still flushes to the OS: the record is
        # on disk for any process-level crash model.
        assert len(scan_wal(path).records) == 1


# ----------------------------------------------------------------------------
# Corruption fuzz: the scan keeps exactly the valid prefix.
# ----------------------------------------------------------------------------
class TestWalCorruption:
    def _write_records(self, path, count: int) -> bytes:
        with WriteAheadLog(path) as wal:
            for counter in range(1, count + 1):
                wal.append(Timestamp(counter, 0), f"v{counter}")
        return path.read_bytes()

    def test_missing_and_empty_files_are_clean(self, tmp_path):
        missing = scan_wal(tmp_path / "nope.log")
        assert (missing.records, missing.dropped_bytes, missing.reason) == ((), 0, "")
        empty = tmp_path / "empty.log"
        empty.write_bytes(b"")
        assert scan_wal(empty).reason == ""
        assert scan_wal(empty).records == ()

    def test_foreign_file_is_all_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"this is not a log at all, honest")
        scan = scan_wal(path)
        assert scan.reason == "bad-magic"
        assert scan.records == ()
        assert scan.dropped_bytes == path.stat().st_size

    def test_truncated_tail_keeps_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        data = self._write_records(path, 3)
        # Chop mid-way through the last record's body: torn-body.
        path.write_bytes(data[:-2])
        scan = scan_wal(path)
        assert scan.reason == "torn-body"
        assert len(scan.records) == 2
        assert scan.records[-1].timestamp == Timestamp(2, 0)

    def test_torn_final_header_keeps_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_records(path, 2)
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x01")  # 3 bytes: less than a header
        scan = scan_wal(path)
        assert scan.reason == "torn-header"
        assert len(scan.records) == 2
        assert scan.dropped_bytes == 3

    def test_crc_bit_flip_drops_from_the_flip(self, tmp_path):
        path = tmp_path / "wal.log"
        data = bytearray(self._write_records(path, 5))
        # Flip one bit inside the *third* record's body; records 1-2 survive.
        offset = len(MAGIC)
        for _ in range(2):
            length, _ = _HEADER.unpack_from(data, offset)
            offset += _HEADER.size + length
        flip_at = offset + _HEADER.size + 1
        data[flip_at] ^= 0x40
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert scan.reason == "crc-mismatch"
        assert len(scan.records) == 2
        assert scan.valid_bytes == offset

    def test_absurd_length_field_stops_the_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_records(path, 1)
        with open(path, "ab") as handle:
            handle.write(_HEADER.pack(MAX_RECORD_BYTES + 1, 0) + b"xx")
        scan = scan_wal(path)
        assert scan.reason == "bad-length"
        assert len(scan.records) == 1

    def test_valid_crc_wrong_shape_is_corrupt_body(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_records(path, 1)
        body = json.dumps({"seq": "not-an-int", "ts": [1, 0], "value": 1}).encode()
        with open(path, "ab") as handle:
            handle.write(_HEADER.pack(len(body), zlib.crc32(body)) + body)
        scan = scan_wal(path)
        assert scan.reason == "corrupt-body"
        assert len(scan.records) == 1

    def test_opening_truncates_the_corrupt_suffix(self, tmp_path):
        path = tmp_path / "wal.log"
        data = self._write_records(path, 3)
        path.write_bytes(data + b"\xde\xad\xbe")
        wal = WriteAheadLog(path)
        try:
            assert wal.scan.reason == "torn-header"
            assert wal.scan.dropped_bytes == 3
            # The file is clean again and appends continue from seq 3.
            assert wal.append(Timestamp(9, 0), "after").seq == 4
        finally:
            wal.close()
        healed = scan_wal(path)
        assert healed.reason == ""
        assert len(healed.records) == 4

    def test_bad_magic_file_is_rewritten_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"garbage")
        with WriteAheadLog(path) as wal:
            assert wal.scan.reason == "bad-magic"
            wal.append(Timestamp(1, 0), "fresh")
        scan = scan_wal(path)
        assert scan.reason == ""
        assert len(scan.records) == 1


# ----------------------------------------------------------------------------
# Snapshots.
# ----------------------------------------------------------------------------
class TestSnapshot:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, Snapshot(seq=7, timestamp=Timestamp(3, 2), value=["a", 1]))
        loaded = read_snapshot(path)
        assert loaded is not None
        assert (loaded.seq, loaded.timestamp) == (7, Timestamp(3, 2))
        assert loaded.value == freeze_value(["a", 1])

    def test_missing_snapshot_is_none(self, tmp_path):
        assert read_snapshot(tmp_path / "snapshot.bin") is None

    @pytest.mark.parametrize(
        "blob",
        [
            b"WRONGMAG" + b"\x00" * 10,
            SNAPSHOT_MAGIC,  # torn header
            SNAPSHOT_MAGIC + _HEADER.pack(100, 0) + b"short",  # length mismatch
        ],
    )
    def test_corrupt_snapshots_raise_storage_error(self, tmp_path, blob):
        path = tmp_path / "snapshot.bin"
        path.write_bytes(blob)
        with pytest.raises(StorageError):
            read_snapshot(path)

    def test_crc_flip_raises_storage_error(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, Snapshot(seq=1, timestamp=Timestamp(1, 0), value="x"))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            read_snapshot(path)

    def test_unserialisable_value_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            write_snapshot(
                tmp_path / "s.bin", Snapshot(seq=1, timestamp=Timestamp(1, 0), value=object())
            )

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, Snapshot(seq=1, timestamp=Timestamp(1, 0), value=None))
        assert [p.name for p in tmp_path.iterdir()] == ["snapshot.bin"]


# ----------------------------------------------------------------------------
# DurableStore recovery.
# ----------------------------------------------------------------------------
class TestDurableStore:
    def test_fresh_directory_recovers_the_zero_pair(self, tmp_path):
        with DurableStore(tmp_path / "d") as store:
            assert store.pair.timestamp == Timestamp.zero()
            assert store.recovery.wal_records == 0
            assert not store.recovery.snapshot_used

    def test_journal_then_reopen_recovers_the_last_pair(self, tmp_path):
        with DurableStore(tmp_path / "d") as store:
            last = _journal_n(store, 5)
        with DurableStore(tmp_path / "d") as store:
            assert store.pair == last
            assert store.recovery.wal_records == 5
            assert store.recovery.applied_records == 5

    def test_reopen_without_close_recovers(self, tmp_path):
        # SIGKILL model: the first handle is never closed.
        first = DurableStore(tmp_path / "d")
        last = _journal_n(first, 3)
        second = DurableStore(tmp_path / "d")
        try:
            assert second.pair == last
        finally:
            second.close()
            first.close()

    def test_duplicate_and_out_of_order_records_replay_idempotently(self, tmp_path):
        data_dir = tmp_path / "d"
        with DurableStore(data_dir) as store:
            _journal_n(store, 3)
        # Hand-append a duplicate of ts=2 and an out-of-order ts=1 record:
        # the crash-between-append-and-ack shapes. Replay must ignore both.
        with open(data_dir / WAL_NAME, "ab") as handle:
            for counter in (2, 1):
                handle.write(
                    encode_record(
                        _WalRecord(seq=90 + counter, timestamp=Timestamp(counter, 0), value="old")
                    )
                )
        with DurableStore(data_dir) as store:
            assert store.pair == _pair(3)
            assert store.recovery.wal_records == 5
            assert store.recovery.applied_records == 3

    def test_torn_tail_loses_only_the_torn_write(self, tmp_path):
        data_dir = tmp_path / "d"
        with DurableStore(data_dir) as store:
            _journal_n(store, 4)
        wal_path = data_dir / WAL_NAME
        wal_path.write_bytes(wal_path.read_bytes()[:-3])
        with DurableStore(data_dir) as store:
            assert store.pair == _pair(3)
            assert store.recovery.reason == "torn-body"
            assert store.recovery.dropped_bytes > 0

    def test_compaction_preserves_recovery(self, tmp_path):
        data_dir = tmp_path / "d"
        with DurableStore(data_dir, snapshot_every=4) as store:
            last = _journal_n(store, 10)
            assert store.status()["wal_records"] < 10  # compaction happened
        with DurableStore(data_dir, snapshot_every=4) as store:
            assert store.pair == last
            assert store.recovery.snapshot_used

    def test_corrupt_snapshot_falls_back_to_the_log(self, tmp_path):
        data_dir = tmp_path / "d"
        with DurableStore(data_dir) as store:
            last = _journal_n(store, 6)
            store.compact()
            # Snapshot now holds ts=6 and the WAL is empty; journal two more
            # so the log alone still reaches the latest state, then corrupt
            # the snapshot in a way recovery must shrug off.
            last = _pair(7)
            store.journal(last)
            last = _pair(8)
            store.journal(last)
        (data_dir / SNAPSHOT_NAME).write_bytes(b"rotted")
        with DurableStore(data_dir) as store:
            assert store.recovery.snapshot_corrupt
            assert not store.recovery.snapshot_used
            assert store.pair == last

    def test_snapshot_newer_than_wal_wins(self, tmp_path):
        # Snapshot/WAL mismatch: a snapshot covering ts=9 next to a stale
        # log holding ts<=3 (compaction crash after rename, before reset).
        data_dir = tmp_path / "d"
        with DurableStore(data_dir) as store:
            _journal_n(store, 3)
        write_snapshot(
            data_dir / SNAPSHOT_NAME, Snapshot(seq=40, timestamp=Timestamp(9, 1), value="snap")
        )
        with DurableStore(data_dir) as store:
            assert store.pair == ValueTimestampPair(value="snap", timestamp=Timestamp(9, 1))
            assert store.recovery.applied_records == 0

    def test_data_dir_collision_raises_storage_error(self, tmp_path):
        blocker = tmp_path / "d"
        blocker.write_text("a file where the data dir should be")
        with pytest.raises(StorageError):
            DurableStore(blocker)

    def test_negative_snapshot_every_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            DurableStore(tmp_path / "d", snapshot_every=-1)

    def test_status_is_json_safe_and_complete(self, tmp_path):
        with DurableStore(tmp_path / "d", fsync="interval:8") as store:
            _journal_n(store, 2)
            status = store.status()
        json.dumps(status)  # must survive a METRICS frame
        assert status["durable"] is True
        assert status["fsync"] == "interval:8"
        assert status["wal_records"] == 2
        assert status["recovery_reason"] == ""


# ----------------------------------------------------------------------------
# Property: journal → recover round-trips arbitrary frozen values.
# ----------------------------------------------------------------------------
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)


class TestRoundTripProperty:
    @given(
        values=st.lists(json_values, min_size=1, max_size=12),
        fsync=st.sampled_from(["always", "never", "interval:3"]),
        snapshot_every=st.sampled_from([0, 3, 1024]),
    )
    @settings(max_examples=40, deadline=None)
    def test_journal_recover_round_trip(self, tmp_path_factory, values, fsync, snapshot_every):
        data_dir = tmp_path_factory.mktemp("store")
        expected = None
        with DurableStore(data_dir, fsync=fsync, snapshot_every=snapshot_every) as store:
            for counter, value in enumerate(values, start=1):
                frozen = freeze_value(value)
                expected = ValueTimestampPair(value=frozen, timestamp=Timestamp(counter, 0))
                store.journal(expected)
        with DurableStore(data_dir, fsync=fsync, snapshot_every=snapshot_every) as store:
            assert store.pair == expected

    @given(garbage=st.binary(min_size=0, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_tail_garbage_never_raises(self, tmp_path_factory, garbage):
        data_dir = tmp_path_factory.mktemp("store")
        with DurableStore(data_dir) as store:
            last = _journal_n(store, 3)
        with open(data_dir / WAL_NAME, "ab") as handle:
            handle.write(garbage)
        with DurableStore(data_dir) as store:
            # Appended garbage can only ever cost the corrupt suffix: the
            # three acked writes are CRC-protected and always survive.
            assert store.pair == last
