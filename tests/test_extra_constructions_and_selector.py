"""Tests for the additional regular systems (tree, wheel) and the construction selector."""

from __future__ import annotations

import pytest

from repro import (
    ConstructionError,
    TreeQuorumSystem,
    WheelQuorumSystem,
    boost_masking,
    exact_load,
    failure_probability,
)
from repro.analysis import recommend_construction
from repro.analysis.selector import candidate_constructions


class TestTreeQuorumSystem:
    def test_structure(self):
        tree = TreeQuorumSystem(2)
        assert tree.n == 7
        tree.to_explicit().validate()
        assert tree.min_quorum_size() == 3            # a root-to-leaf path
        assert tree.to_explicit().min_quorum_size() == 3

    def test_depth_zero_is_a_singleton(self):
        tree = TreeQuorumSystem(0)
        assert tree.n == 1
        assert set(tree.quorums()) == {frozenset({0})}

    def test_invalid_depths_rejected(self):
        with pytest.raises(ConstructionError):
            TreeQuorumSystem(-1)
        with pytest.raises(ConstructionError):
            TreeQuorumSystem(9)

    def test_it_is_regular_not_masking(self):
        tree = TreeQuorumSystem(2)
        assert tree.min_intersection_size() == 1
        assert tree.masking_bound() == 0

    def test_root_bypass_gives_fault_tolerance(self):
        # Crashing the root still leaves the both-children quorums alive.
        tree = TreeQuorumSystem(2)
        survivors = tree.to_explicit().restricted_to_alive({0})
        assert survivors is not None
        assert tree.to_explicit().min_transversal_size() >= 2

    def test_sampled_quorums_are_quorums(self, rng):
        tree = TreeQuorumSystem(2)
        quorums = set(tree.quorums())
        for _ in range(10):
            assert tree.sample_quorum(rng) in quorums

    def test_boosting_a_tree(self):
        boosted = boost_masking(TreeQuorumSystem(1), 1)
        assert boosted.is_b_masking(1)
        assert boosted.n == 15


class TestWheelQuorumSystem:
    def test_structure(self):
        wheel = WheelQuorumSystem(6)
        assert wheel.num_quorums() == 6
        wheel.to_explicit().validate()
        assert wheel.min_quorum_size() == 2
        assert wheel.min_intersection_size() == 1

    def test_too_small_rejected(self):
        with pytest.raises(ConstructionError):
            WheelQuorumSystem(2)

    def test_transversal_is_hub_plus_rim_server(self):
        wheel = WheelQuorumSystem(7)
        assert wheel.min_transversal_size() == wheel.to_explicit().min_transversal_size() == 2

    def test_load_beats_majority(self):
        # Balancing between the spokes and the rim gives load 8/15, below
        # the 5/9 of a majority over the same nine servers.
        wheel = WheelQuorumSystem(9)
        assert exact_load(wheel).load == pytest.approx(8 / 15, abs=1e-6)

    def test_crash_probability(self):
        wheel = WheelQuorumSystem(5)
        # The system dies iff (hub dead or all rim dead) and some rim server dead.
        value = failure_probability(wheel, 0.2, method="exact").value
        assert 0.0 < value < 0.5

    def test_sampling(self, rng):
        wheel = WheelQuorumSystem(6)
        quorums = set(wheel.quorums())
        for _ in range(10):
            assert wheel.sample_quorum(rng) in quorums

    def test_boosting_a_wheel(self):
        boosted = boost_masking(WheelQuorumSystem(4), 1)
        assert boosted.is_b_masking(1)


class TestSelector:
    def test_reproduces_the_section8_conclusion(self, rng):
        # With ~1024 servers, p = 1/8, b = 15 required and a load budget of
        # ~1/4, the paper concludes "the RT(4,3) construction is the best".
        recommendation = recommend_construction(
            1024, 0.125, required_b=15, max_load=0.3, rng=rng
        )
        assert recommendation.best is not None
        assert "RT(4,3)" in recommendation.best.name
        rejected_names = {profile.name for profile in recommendation.rejected}
        assert any("Threshold" in name for name in rejected_names)

    def test_high_masking_requirement_forces_threshold(self, rng):
        recommendation = recommend_construction(256, 0.1, required_b=60, rng=rng)
        assert recommendation.best is not None
        assert "Threshold" in recommendation.best.name
        # Nothing grid-shaped can mask 60 failures over 256 servers.
        assert all("Threshold" in profile.name for profile in recommendation.feasible)

    def test_load_budget_filters_threshold(self, rng):
        with_budget = recommend_construction(256, 0.125, required_b=3, max_load=0.5, rng=rng)
        without_budget = recommend_construction(256, 0.125, required_b=3, rng=rng)
        assert len(with_budget.feasible) < len(without_budget.feasible)

    def test_feasible_profiles_sorted_by_availability(self, rng):
        recommendation = recommend_construction(256, 0.125, required_b=3, rng=rng)
        crash_values = [profile.crash_probability for profile in recommendation.feasible]
        assert crash_values == sorted(crash_values)

    def test_candidate_generation_skips_infeasible_shapes(self):
        candidates = candidate_constructions(64, required_b=10)
        names = [system.name for system in candidates]
        # M-Grid/M-Path over an 8x8 grid cannot mask 10 failures.
        assert not any(name.startswith("M-Grid") for name in names)
        assert not any(name.startswith("M-Path") for name in names)
        assert any("Threshold" in name for name in names)

    def test_invalid_arguments_rejected(self, rng):
        with pytest.raises(ConstructionError):
            recommend_construction(2, 0.1, required_b=1, rng=rng)
        with pytest.raises(ConstructionError):
            recommend_construction(64, 0.1, required_b=-1, rng=rng)
