"""Unit tests for the literal b-masking checks (Definitions 3.4 and 3.5)."""

from __future__ import annotations

import pytest

from repro import (
    ExplicitQuorumSystem,
    MaskingViolationError,
    masking_report,
    verify_masking,
)
from repro.core.masking import check_consistency, check_resilience


class TestConsistency:
    def test_masking_threshold_consistent(self, mr98_threshold):
        assert check_consistency(mr98_threshold, 3) is None

    def test_violating_pair_returned(self, majority_5):
        # 3-of-5 has intersections of size 1, so it is not even 1-masking.
        pair = check_consistency(majority_5, 1)
        assert pair is not None
        first, second = pair
        assert len(first & second) < 3

    def test_single_small_quorum_fails_consistency(self):
        system = ExplicitQuorumSystem(range(3), [{0, 1}], name="one-quorum")
        assert check_consistency(system, 1) is not None

    def test_mgrid_consistency_at_its_bound(self, mgrid_7_3):
        assert check_consistency(mgrid_7_3, 3) is None
        assert check_consistency(mgrid_7_3, 4) is not None


class TestResilience:
    def test_blocking_set_found_when_resilience_too_low(self, simple_system):
        # Element 2 hits every quorum, so even b = 1 faults can block access.
        blocking = check_resilience(simple_system, 1)
        assert blocking == frozenset({2})

    def test_blocking_set_padded_to_requested_size(self, simple_system):
        blocking = check_resilience(simple_system, 3)
        assert blocking is not None
        assert len(blocking) == 3
        assert 2 in blocking

    def test_no_blocking_set_below_mt(self, threshold_9_7):
        # MT = 3, so resilience holds for b = 2.
        assert check_resilience(threshold_9_7, 2) is None
        assert check_resilience(threshold_9_7, 3) is not None

    def test_zero_faults_never_block(self, simple_system):
        assert check_resilience(simple_system, 0) is None


class TestReportsAndVerification:
    def test_report_for_masking_system(self, threshold_9_7):
        report = masking_report(threshold_9_7, 2)
        assert report.is_masking
        assert report.consistent and report.resilient
        assert report.violating_pair is None and report.blocking_set is None

    def test_report_for_non_masking_system(self, majority_5):
        report = masking_report(majority_5, 1)
        assert not report.is_masking
        assert not report.consistent

    def test_verify_masking_passes(self, mgrid_7_3):
        verify_masking(mgrid_7_3, 3)

    def test_verify_masking_raises_on_consistency(self, majority_5):
        with pytest.raises(MaskingViolationError, match="intersect"):
            verify_masking(majority_5, 1)

    def test_verify_masking_raises_on_resilience(self):
        # Intersections are large (single fat quorum) but one server blocks all.
        system = ExplicitQuorumSystem(range(6), [{0, 1, 2, 3, 4}], name="fat")
        with pytest.raises(MaskingViolationError, match="hit every quorum"):
            verify_masking(system, 1)

    def test_negative_b_rejected(self, majority_5):
        with pytest.raises(MaskingViolationError):
            masking_report(majority_5, -1)

    def test_agreement_with_corollary_3_7(self, mgrid_7_3, rt_4_3_depth2, fpp_order2):
        # The literal check and the MT/IS shortcut must agree on every b.
        for system in (mgrid_7_3, rt_4_3_depth2, fpp_order2):
            bound = system.masking_bound()
            for b in range(bound + 2):
                assert masking_report(system, b).is_masking == system.is_b_masking(b)
