"""Unit tests for the fault model and protocol messages of the simulator."""

from __future__ import annotations

import pytest

from repro import SimulationError, Universe
from repro.simulation import FaultInjector, FaultScenario, Timestamp, ValueTimestampPair


class TestTimestamps:
    def test_total_order(self):
        assert Timestamp(1, 0) < Timestamp(2, 0)
        assert Timestamp(1, 0) < Timestamp(1, 1)
        assert Timestamp(2, 0) > Timestamp(1, 9)

    def test_next_for_is_strictly_greater(self):
        current = Timestamp(5, 3)
        successor = current.next_for(0)
        assert successor > current
        assert successor.client_id == 0

    def test_zero_is_smallest_realistic_timestamp(self):
        assert Timestamp.zero() < Timestamp(1, 0)
        assert Timestamp.zero() < Timestamp.zero().next_for(7)

    def test_equality_and_hash(self):
        assert Timestamp(1, 2) == Timestamp(1, 2)
        assert len({Timestamp(1, 2), Timestamp(1, 2)}) == 1

    def test_pairs_are_value_objects(self):
        pair = ValueTimestampPair("x", Timestamp(1, 0))
        assert pair == ValueTimestampPair("x", Timestamp(1, 0))


class TestFaultScenario:
    def test_fault_free(self):
        scenario = FaultScenario.fault_free()
        assert scenario.num_byzantine == 0
        assert scenario.num_crashed == 0
        assert scenario.is_correct("anything")

    def test_classification(self):
        scenario = FaultScenario(byzantine=frozenset({1}), crashed=frozenset({2}))
        assert not scenario.is_correct(1)
        assert not scenario.is_correct(2)
        assert scenario.is_correct(3)
        assert scenario.is_responsive(1)
        assert not scenario.is_responsive(2)

    def test_overlapping_fault_sets_rejected(self):
        with pytest.raises(SimulationError):
            FaultScenario(byzantine=frozenset({1}), crashed=frozenset({1}))


class TestFaultInjector:
    def test_exact_counts(self, rng):
        injector = FaultInjector(Universe.of_size(10), rng)
        scenario = injector.exact(num_byzantine=2, num_crashed=3)
        assert scenario.num_byzantine == 2
        assert scenario.num_crashed == 3
        assert not scenario.byzantine & scenario.crashed

    def test_exact_rejects_oversubscription(self, rng):
        injector = FaultInjector(Universe.of_size(4), rng)
        with pytest.raises(SimulationError):
            injector.exact(num_byzantine=3, num_crashed=3)

    def test_exact_rejects_negative(self, rng):
        injector = FaultInjector(Universe.of_size(4), rng)
        with pytest.raises(SimulationError):
            injector.exact(num_byzantine=-1)

    def test_independent_crashes_extremes(self, rng):
        injector = FaultInjector(Universe.of_size(20), rng)
        assert injector.independent_crashes(0.0).num_crashed == 0
        assert injector.independent_crashes(1.0).num_crashed == 20

    def test_independent_crashes_skip_byzantine_servers(self, rng):
        injector = FaultInjector(Universe.of_size(10), rng)
        scenario = injector.independent_crashes(1.0, byzantine=[0, 1])
        assert scenario.byzantine == frozenset({0, 1})
        assert scenario.num_crashed == 8

    def test_independent_crashes_rejects_bad_probability(self, rng):
        injector = FaultInjector(Universe.of_size(5), rng)
        with pytest.raises(SimulationError):
            injector.independent_crashes(1.2)

    def test_targeted_validates_membership(self, rng):
        injector = FaultInjector(Universe.of_size(5), rng)
        scenario = injector.targeted(byzantine=[0], crashed=[1, 2])
        assert scenario.byzantine == frozenset({0})
        with pytest.raises(Exception):
            injector.targeted(byzantine=[99])
