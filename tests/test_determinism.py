"""Seed-determinism regression: one seed, one report — bit for bit.

Every workload run derives all of its randomness from ``WorkloadSpec.seed``
(scenario placement and the workload itself draw from separately derived
streams), so re-running the same spec must reproduce the identical
:class:`~repro.api.workloads.WorkloadReport`.  This is what makes failures
reportable ("seed 17 violates the bound") and the adversarial trajectories
replayable; a regression here would silently invalidate every seed-pinned
assertion in the suite.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.api.scenarios import available_scenarios, is_timed

#: Catalogue entries that need a lattice-shaped (square) universe get a
#: square side; everything else runs on the same small masking grid.
SYSTEM = dict(system="mgrid", params={"side": 5, "b": 1})


def _report(scenario: str | None, *, seed: int, engine: str = "auto"):
    spec = api.WorkloadSpec(
        **SYSTEM, scenario=scenario, operations=120, clients=4, seed=seed
    )
    return api.run(spec, engine=engine)


@pytest.mark.parametrize("scenario", sorted(available_scenarios()))
def test_every_catalogue_scenario_is_seed_deterministic(scenario):
    first = _report(scenario, seed=11)
    second = _report(scenario, seed=11)
    assert first.to_dict() == second.to_dict()


@pytest.mark.parametrize("scenario", ["fault-free", "iid-crash", "byzantine"])
def test_untimed_scenarios_replay_on_both_engines(scenario):
    for engine in ("vectorized", "event"):
        first = _report(scenario, seed=7, engine=engine)
        second = _report(scenario, seed=7, engine=engine)
        assert first.engine == engine
        assert first.to_dict() == second.to_dict()


def test_different_seeds_actually_differ():
    """The determinism above must not be the degenerate kind."""
    reports = {_report("iid-crash", seed=seed).to_dict()["empirical_load"]
               for seed in range(8)}
    assert len(reports) > 1


def test_adaptive_trajectory_replays_through_the_facade():
    """The adversary's round-by-round choices are part of the seeded state."""
    first = _report("adaptive-load", seed=3)
    second = _report("adaptive-load", seed=3)
    assert first.to_dict() == second.to_dict()
    assert first.engine == "vectorized"


def test_trace_scenario_replays_through_the_facade():
    first = _report("diurnal", seed=5)
    second = _report("diurnal", seed=5)
    assert first.to_dict() == second.to_dict()
    assert first.engine == "event"
    assert is_timed("diurnal")
