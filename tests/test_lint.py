"""Tests for :mod:`repro.lint` — rules in both directions, pragma discipline,
the JSON report schema, the typing gate, and the self-check that ``src/repro``
itself lints clean.

Fixture sources live in ``tests/lint_fixtures/`` (see its README): one
deliberately-violating and one deliberately-clean file per rule, so every
rule is tested both for catching violations and for not flagging idiomatic
code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError
from repro.lint import (
    RULES,
    check_annotations,
    check_registry,
    lint_file,
    lint_source,
    lint_tree,
)
from repro.lint.cli import SCHEMA_VERSION, main
from repro.lint.typing_gate import (
    DEFAULT_RATCHET,
    check_annotations_for_root,
    ratchet_module_patterns,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def rules_fired(violations) -> set[str]:
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# Rule catalogue sanity.
# ----------------------------------------------------------------------
class TestRuleCatalogue:
    def test_all_rules_present(self):
        assert set(RULES) == {"R0", "R1", "R2", "R3", "R4", "R5", "T1"}

    def test_rules_carry_documentation(self):
        for rule in RULES.values():
            assert rule.summary
            assert rule.rationale
            assert rule.scope in ("file", "hot-paths", "project", "ratchet")


# ----------------------------------------------------------------------
# R1 — determinism.
# ----------------------------------------------------------------------
class TestR1Determinism:
    def test_flags_every_untracked_entropy_source(self):
        violations = lint_file(FIXTURES / "r1_violation.py")
        assert rules_fired(violations) == {"R1"}
        # argless default_rng, default_rng(None), np.random.seed,
        # np.random.uniform, random.random
        assert len(violations) == 5

    def test_clean_seed_threading_passes(self):
        assert lint_file(FIXTURES / "r1_clean.py") == []

    def test_aliased_import_is_resolved(self):
        source = "from numpy.random import default_rng as mk\nmk()\n"
        assert rules_fired(lint_source(source, "x.py")) == {"R1"}

    def test_seeded_default_rng_is_legal(self):
        source = "import numpy as np\nnp.random.default_rng(7)\n"
        assert lint_source(source, "x.py") == []


# ----------------------------------------------------------------------
# R2 — mask-native hot paths.
# ----------------------------------------------------------------------
class TestR2MaskNative:
    def test_frozenset_traversal_in_hot_module(self):
        violations = lint_file(FIXTURES / "hot" / "core" / "bitset.py")
        assert rules_fired(violations) == {"R2"}
        assert len(violations) == 2

    def test_mask_native_hot_module_passes(self):
        assert lint_file(FIXTURES / "hot_clean" / "core" / "strategy.py") == []

    def test_rule_is_scoped_to_hot_modules_only(self):
        source = "def f(s):\n    return list(s.quorums())\n"
        assert lint_source(source, "repro/analysis/tables.py") == []
        assert rules_fired(lint_source(source, "repro/simulation/engine.py")) == {"R2"}


# ----------------------------------------------------------------------
# R3 — exception taxonomy.
# ----------------------------------------------------------------------
class TestR3ExceptionTaxonomy:
    def test_bare_builtin_raises_are_flagged(self):
        violations = lint_file(FIXTURES / "r3_violation.py")
        assert rules_fired(violations) == {"R3"}
        assert len(violations) == 2

    def test_taxonomy_raises_pass(self):
        assert lint_file(FIXTURES / "r3_clean.py") == []

    def test_bare_reraise_is_legal(self):
        source = "try:\n    pass\nexcept ValueError:\n    raise\n"
        assert lint_source(source, "x.py") == []

    def test_raw_oserror_in_storage_layer_is_flagged(self):
        source = "raise OSError('disk full')\n"
        violations = lint_source(source, "repro/storage/wal.py")
        assert rules_fired(violations) == {"R3"}
        assert "StorageError" in violations[0].message

    def test_raw_ioerror_in_storage_layer_is_flagged(self):
        assert rules_fired(
            lint_source("raise IOError('boom')\n", "src/repro/storage/store.py")
        ) == {"R3"}

    def test_raw_oserror_outside_storage_layer_is_legal(self):
        assert lint_source("raise OSError('fine here')\n", "repro/service/wire.py") == []

    def test_storage_error_raise_in_storage_layer_is_legal(self):
        source = (
            "from repro.exceptions import StorageError\n"
            "raise StorageError('wrapped')\n"
        )
        assert lint_source(source, "repro/storage/snapshot.py") == []


# ----------------------------------------------------------------------
# R4 — float discipline.
# ----------------------------------------------------------------------
class TestR4FloatEquality:
    def test_exact_float_comparisons_are_flagged(self):
        violations = lint_file(FIXTURES / "r4_violation.py")
        assert rules_fired(violations) == {"R4"}
        assert len(violations) == 3

    def test_tolerance_helpers_and_int_compares_pass(self):
        assert lint_file(FIXTURES / "r4_clean.py") == []

    def test_float_ordering_comparisons_are_legal(self):
        assert lint_source("ok = x <= 1.0\n", "x.py") == []


# ----------------------------------------------------------------------
# R0 — pragma discipline.
# ----------------------------------------------------------------------
class TestR0PragmaDiscipline:
    def test_justified_pragma_suppresses_its_line(self):
        assert lint_file(FIXTURES / "pragma_ok.py") == []

    def test_missing_justification_voids_the_suppression(self):
        violations = lint_file(FIXTURES / "pragma_missing_justification.py")
        assert rules_fired(violations) == {"R0", "R1"}

    def test_unknown_rule_in_pragma(self):
        violations = lint_file(FIXTURES / "pragma_unknown_rule.py")
        assert rules_fired(violations) == {"R0", "R1"}
        r0 = [v for v in violations if v.rule == "R0"]
        assert "unknown rule" in r0[0].message

    def test_pragma_only_covers_its_own_line(self):
        source = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # repro-lint: disable=R1 -- fixture\n"
            "b = np.random.default_rng()\n"
        )
        violations = lint_source(source, "x.py")
        assert [v.line for v in violations] == [3]

    def test_pragma_in_string_literal_is_not_a_pragma(self):
        source = 'doc = "# repro-lint: disable=R1"\n'
        assert lint_source(source, "x.py") == []

    def test_r0_runs_even_under_rule_filter(self):
        source = "x = 1  # repro-lint: disable=R1\n"
        violations = lint_source(source, "x.py", rules={"R4"})
        assert rules_fired(violations) == {"R0"}


# ----------------------------------------------------------------------
# R5 — registry completeness.
# ----------------------------------------------------------------------
class TestR5Registry:
    def test_clean_registry_layout_passes(self):
        root = FIXTURES / "registry_ok"
        violations = check_registry(
            root / "constructions", root / "api" / "registry.py", package="fixturepkg.constructions"
        )
        assert violations == []

    def test_violating_registry_layout(self):
        root = FIXTURES / "registry_bad"
        violations = check_registry(
            root / "constructions", root / "api" / "registry.py", package="fixturepkg.constructions"
        )
        assert rules_fired(violations) == {"R5"}
        messages = "\n".join(v.message for v in violations)
        assert "fixturepkg.constructions.orphan" in messages  # module not imported
        assert "Hub" in messages  # public class not imported
        assert "params" in messages  # entry without typed parameter specs
        assert len(violations) == 3

    def test_real_registry_is_complete(self):
        violations = check_registry(
            SRC_ROOT / "constructions", SRC_ROOT / "api" / "registry.py"
        )
        assert violations == []


# ----------------------------------------------------------------------
# T1 — the typing gate.
# ----------------------------------------------------------------------
class TestT1TypingGate:
    def test_annotation_gaps_are_flagged(self):
        violations = check_annotations([FIXTURES / "t1_violation.py"])
        assert rules_fired(violations) == {"T1"}
        messages = "\n".join(v.message for v in violations)
        assert "return type" in messages
        assert "parameter 'n'" in messages
        assert "parameter **kwargs" in messages
        assert len(violations) == 3

    def test_fully_annotated_surface_passes(self):
        assert check_annotations([FIXTURES / "t1_clean.py"]) == []

    def test_ratchet_patterns_come_from_pyproject(self):
        patterns = ratchet_module_patterns(REPO_ROOT / "pyproject.toml")
        assert "repro.core.*" in patterns
        assert "repro.api.*" in patterns
        assert "repro.lint.*" in patterns
        assert "repro.exceptions" in patterns

    def test_ratchet_falls_back_without_pyproject(self):
        assert ratchet_module_patterns(None) == DEFAULT_RATCHET

    def test_non_package_root_is_not_ratcheted(self, tmp_path):
        (tmp_path / "loose.py").write_text("def f(x):\n    return x\n")
        assert check_annotations_for_root(tmp_path) == []


# ----------------------------------------------------------------------
# JSON report schema (locked: bump SCHEMA_VERSION to change it).
# ----------------------------------------------------------------------
class TestJsonSchema:
    def run_json(self, argv, capsys):
        status = main(argv + ["--json"])
        return status, json.loads(capsys.readouterr().out)

    def test_schema_keys_and_types(self, capsys):
        status, report = self.run_json([str(FIXTURES / "r1_violation.py")], capsys)
        assert status == 1
        assert list(report) == [
            "schema_version",
            "root",
            "rules_run",
            "files_checked",
            "ok",
            "counts",
            "violations",
        ]
        assert report["schema_version"] == SCHEMA_VERSION == 1
        assert report["ok"] is False
        assert report["files_checked"] == 1
        assert report["counts"] == {"R1": 5}
        for violation in report["violations"]:
            assert list(violation) == ["rule", "path", "line", "col", "message"]

    def test_violations_are_sorted_and_stable(self, capsys):
        _, first = self.run_json([str(FIXTURES)], capsys)
        _, second = self.run_json([str(FIXTURES)], capsys)
        assert first == second
        keys = [
            (v["path"], v["line"], v["col"], v["rule"]) for v in first["violations"]
        ]
        assert keys == sorted(keys)

    def test_clean_report(self, capsys):
        status, report = self.run_json([str(FIXTURES / "r1_clean.py")], capsys)
        assert status == 0
        assert report["ok"] is True
        assert report["counts"] == {}
        assert report["violations"] == []


# ----------------------------------------------------------------------
# CLI behaviour.
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_nonzero_on_violation_fixture(self):
        assert main([str(FIXTURES / "r4_violation.py")]) == 1

    def test_exit_zero_on_clean_fixture(self):
        assert main([str(FIXTURES / "r4_clean.py")]) == 0

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["--rule", "R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["does/not/exist.py"]) == 2

    def test_rule_filter_limits_what_fires(self, capsys):
        status = main([str(FIXTURES / "r1_violation.py"), "--rule", "R4", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert status == 0
        assert report["rules_run"] == ["R0", "R4"]
        assert report["violations"] == []

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_output_file_for_ci_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint.json"
        status = main([str(FIXTURES / "r3_violation.py"), "--output", str(artifact)])
        assert status == 1
        report = json.loads(artifact.read_text())
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["counts"] == {"R3": 2}

    def test_unparseable_python_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2

    def test_lint_source_raises_on_syntax_error(self):
        with pytest.raises(InvalidParameterError):
            lint_source("def broken(:\n", "bad.py")


# ----------------------------------------------------------------------
# The self-check: the shipped library obeys its own contracts.
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_repro_is_violation_free(self):
        violations, files_checked = lint_tree(
            SRC_ROOT, pyproject=REPO_ROOT / "pyproject.toml"
        )
        rendered = "\n".join(v.render() for v in violations)
        assert violations == [], f"src/repro lint violations:\n{rendered}"
        assert files_checked > 60

    def test_cli_self_check_exits_zero(self):
        assert main([str(SRC_ROOT), "--pyproject", str(REPO_ROOT / "pyproject.toml")]) == 0
