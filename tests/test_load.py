"""Unit tests for the load measure (Definition 3.8, Proposition 3.9)."""

from __future__ import annotations


import pytest

from repro import (
    ComputationError,
    ExplicitQuorumSystem,
    Strategy,
    best_known_load,
    exact_load,
    fair_load,
    load_of_strategy,
)


class TestExactLoadLP:
    def test_majority_load(self, majority_5):
        # Fair system: L = c/n = 3/5.
        result = exact_load(majority_5)
        assert result.load == pytest.approx(0.6, abs=1e-6)
        assert result.method == "lp"

    def test_singleton_load_is_one(self, singleton_system):
        assert exact_load(singleton_system).load == pytest.approx(1.0)

    def test_simple_system_load(self, simple_system):
        # The middle element 2 is in every quorum, so its load is 1 under any
        # strategy; the LP cannot do better.
        assert exact_load(simple_system).load == pytest.approx(1.0)

    def test_lp_strategy_achieves_reported_load(self, majority_5):
        result = exact_load(majority_5)
        induced = load_of_strategy(majority_5, result.strategy)
        assert induced == pytest.approx(result.load, abs=1e-6)

    def test_lp_matches_fair_formula_on_fair_systems(self, threshold_9_7, fpp_order2):
        for system in (threshold_9_7, fpp_order2):
            lp_value = exact_load(system).load
            assert lp_value == pytest.approx(system.min_quorum_size() / system.n, abs=1e-6)

    def test_grid_load_lp(self, regular_grid_4):
        # Maekawa grid is fair: L = (2*4 - 1)/16.
        assert exact_load(regular_grid_4).load == pytest.approx(7 / 16, abs=1e-6)

    def test_non_fair_system_can_beat_uniform(self):
        # Wheel-like system: quorums {0, i} for spokes plus the rim {1, 2, 3}.
        system = ExplicitQuorumSystem(
            range(4), [{0, 1}, {0, 2}, {0, 3}, {1, 2, 3}], name="wheel"
        )
        uniform = Strategy.uniform_over_system(system)
        lp = exact_load(system)
        assert lp.load < uniform.induced_system_load(system.universe)
        # Optimal split: 0.6 total weight on the spokes, 0.4 on the rim.
        assert lp.load == pytest.approx(0.6, abs=1e-6)


class TestFairLoad:
    def test_fair_load_on_fair_system(self, threshold_9_7):
        result = fair_load(threshold_9_7)
        assert result.load == pytest.approx(7 / 9)
        assert result.method == "fair"

    def test_fair_load_rejects_unfair_system(self, simple_system):
        with pytest.raises(ComputationError):
            fair_load(simple_system)

    def test_fair_load_strategy_is_uniform(self, majority_5):
        result = fair_load(majority_5)
        probabilities = {p for _, p in result.strategy.items()}
        assert len(probabilities) == 1


class TestBestKnownLoad:
    def test_prefers_analytic_closed_form(self, mgrid_7_3):
        result = best_known_load(mgrid_7_3)
        assert result.method == "analytic"
        assert result.load == pytest.approx(mgrid_7_3.load())

    def test_falls_back_to_fair_formula(self, simple_system, majority_5):
        assert best_known_load(majority_5.to_explicit()).method == "fair"
        assert best_known_load(simple_system).method == "lp"

    def test_analytic_load_agrees_with_lp_for_mgrid(self, mgrid_7_3):
        lp_value = exact_load(mgrid_7_3).load
        assert lp_value == pytest.approx(mgrid_7_3.load(), abs=1e-6)


class TestLoadOfStrategy:
    def test_matches_induced_system_load(self, majority_5):
        strategy = Strategy.uniform_over_system(majority_5)
        assert load_of_strategy(majority_5, strategy) == pytest.approx(0.6)

    def test_skewed_strategy_overloads_some_server(self, majority_5):
        favourite = majority_5.quorums()[0]
        strategy = Strategy({favourite: 1.0})
        assert load_of_strategy(majority_5, strategy) == pytest.approx(1.0)
