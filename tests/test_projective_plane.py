"""Unit tests for the projective-plane substrate and the FPP quorum system."""

from __future__ import annotations

import pytest

from repro import ConstructionError, exact_load
from repro.gf.projective_plane import projective_plane


class TestIncidenceStructure:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_axioms_hold(self, q):
        plane = projective_plane(q)
        plane.verify()
        assert plane.num_points == q * q + q + 1
        assert plane.line_size == q + 1

    def test_every_point_on_q_plus_one_lines(self):
        plane = projective_plane(3)
        for point_index in range(plane.num_points):
            assert len(plane.lines_through(point_index)) == 4

    def test_two_points_determine_one_line(self):
        plane = projective_plane(2)
        for first in range(plane.num_points):
            for second in range(first + 1, plane.num_points):
                containing = [
                    line for line in plane.lines if first in line and second in line
                ]
                assert len(containing) == 1

    def test_non_prime_power_order_rejected(self):
        with pytest.raises(ConstructionError):
            projective_plane(6)

    def test_point_index_roundtrip(self):
        plane = projective_plane(2)
        for index, point in enumerate(plane.points):
            assert plane.point_index(point) == index


class TestFPPQuorumSystem:
    def test_fano_plane_parameters(self, fpp_order2):
        assert fpp_order2.n == 7
        assert fpp_order2.num_quorums() == 7
        assert fpp_order2.min_quorum_size() == 3
        assert fpp_order2.min_intersection_size() == 1
        assert fpp_order2.min_transversal_size() == 3

    def test_analytic_values_match_enumeration(self, fpp_order3):
        explicit = fpp_order3.to_explicit()
        assert explicit.min_quorum_size() == fpp_order3.min_quorum_size() == 4
        assert explicit.min_intersection_size() == fpp_order3.min_intersection_size() == 1
        assert explicit.min_transversal_size() == fpp_order3.min_transversal_size() == 4

    def test_it_is_a_valid_regular_quorum_system(self, fpp_order3):
        fpp_order3.to_explicit().validate()
        assert fpp_order3.masking_bound() == 0

    def test_load_is_optimal_for_regular_systems(self, fpp_order3):
        # L(FPP) = (q+1)/n ~ 1/sqrt(n), and the LP agrees (the system is fair).
        assert fpp_order3.load() == pytest.approx(4 / 13)
        assert exact_load(fpp_order3).load == pytest.approx(4 / 13, abs=1e-6)

    def test_fairness(self, fpp_order2):
        size, degree = fpp_order2.to_explicit().fairness()
        assert size == 3
        assert degree == 3

    def test_crash_probability_upper_bound(self, fpp_order2):
        assert fpp_order2.crash_probability_upper_bound(0.1) == pytest.approx(0.3)
        assert fpp_order2.crash_probability_upper_bound(0.9) == 1.0

    def test_crash_probability_bound_actually_bounds(self, fpp_order2):
        from repro import exact_failure_probability

        for p in (0.05, 0.1, 0.2):
            exact = exact_failure_probability(fpp_order2, p).value
            assert exact <= fpp_order2.crash_probability_upper_bound(p) + 1e-12

    def test_sample_quorum_is_a_line(self, fpp_order3, rng):
        lines = set(fpp_order3.quorums())
        assert fpp_order3.sample_quorum(rng) in lines
