"""Unit tests for minimal transversals (Definition 3.3) and resilience."""

from __future__ import annotations

import pytest

from repro import ComputationError
from repro.core.transversal import (
    greedy_transversal,
    is_transversal,
    minimal_transversal,
    minimal_transversal_size,
)


class TestIsTransversal:
    def test_accepts_hitting_set(self):
        sets = [frozenset({0, 1}), frozenset({1, 2})]
        assert is_transversal({1}, sets)
        assert is_transversal({0, 2}, sets)

    def test_rejects_missing_set(self):
        sets = [frozenset({0, 1}), frozenset({2, 3})]
        assert not is_transversal({0}, sets)

    def test_empty_collection_is_trivially_hit(self):
        assert is_transversal(set(), [])


class TestGreedy:
    def test_greedy_is_a_transversal(self):
        sets = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})]
        result = greedy_transversal(sets)
        assert is_transversal(result, sets)

    def test_greedy_finds_obvious_common_element(self):
        sets = [frozenset({5, i}) for i in range(4)]
        assert greedy_transversal(sets) == frozenset({5})


class TestExact:
    def test_single_common_element(self):
        sets = [frozenset({2, i}) for i in (0, 1, 3, 4)]
        assert minimal_transversal(sets) == frozenset({2})

    def test_disjoint_sets_need_one_each(self):
        sets = [frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})]
        assert minimal_transversal_size(sets) == 3

    def test_threshold_system_transversal(self, threshold_9_7):
        # MT of k-of-n is n - k + 1 = 3.
        quorums = threshold_9_7.quorums()
        assert minimal_transversal_size(quorums) == 3

    def test_mgrid_transversal(self, mgrid_7_3):
        # MT of M-Grid is side - k + 1 = 7 - 2 + 1 = 6.
        assert minimal_transversal_size(mgrid_7_3.quorums()) == 6

    def test_result_is_transversal_and_minimal_certificate(self, rt_4_3_depth2):
        quorums = rt_4_3_depth2.quorums()
        result = minimal_transversal(quorums)
        assert is_transversal(result, quorums)
        assert len(result) == 4  # (k - l + 1)^h = 2^2

    def test_engines_agree(self, simple_system):
        quorums = simple_system.quorums()
        milp = minimal_transversal(quorums, engine="milp")
        bnb = minimal_transversal(quorums, engine="branch-and-bound")
        assert len(milp) == len(bnb) == 1

    def test_engines_agree_on_fano_plane(self, fpp_order2):
        quorums = fpp_order2.quorums()
        assert (
            minimal_transversal_size(quorums, engine="milp")
            == minimal_transversal_size(quorums, engine="branch-and-bound")
            == 3
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ComputationError):
            minimal_transversal([frozenset({0})], engine="quantum")

    def test_empty_set_in_input_rejected(self):
        with pytest.raises(ComputationError):
            minimal_transversal([frozenset()])

    def test_empty_collection_has_empty_transversal(self):
        assert minimal_transversal([]) == frozenset()

    def test_max_sets_guard(self):
        sets = [frozenset({0, i}) for i in range(1, 30)]
        with pytest.raises(ComputationError):
            minimal_transversal(sets, max_sets=10)


class TestResilience:
    def test_resilience_is_mt_minus_one(self, mgrid_7_3):
        assert mgrid_7_3.to_explicit().resilience() == 5

    def test_crashing_a_minimal_transversal_kills_every_quorum(self, rt_4_3_depth2):
        transversal = rt_4_3_depth2.to_explicit().minimal_transversal()
        assert rt_4_3_depth2.to_explicit().restricted_to_alive(transversal) is None

    def test_crashing_fewer_servers_leaves_a_quorum(self, rt_4_3_depth2):
        explicit = rt_4_3_depth2.to_explicit()
        transversal = explicit.minimal_transversal()
        smaller = set(transversal)
        smaller.pop()
        assert explicit.restricted_to_alive(smaller) is not None
