"""Unit tests for the graph substrate: union-find, max-flow, disjoint paths."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import FlowNetwork, UnionFind, max_vertex_disjoint_paths


class TestUnionFind:
    def test_initially_disconnected(self):
        dsu = UnionFind()
        assert not dsu.connected("a", "b")

    def test_union_connects(self):
        dsu = UnionFind()
        assert dsu.union("a", "b")
        assert dsu.connected("a", "b")
        assert not dsu.union("a", "b")

    def test_transitivity(self):
        dsu = UnionFind()
        dsu.union(1, 2)
        dsu.union(2, 3)
        dsu.union(4, 5)
        assert dsu.connected(1, 3)
        assert not dsu.connected(1, 5)

    def test_component_counting(self):
        dsu = UnionFind()
        for element in range(6):
            dsu.add(element)
        assert dsu.num_components == 6
        dsu.union(0, 1)
        dsu.union(2, 3)
        assert dsu.num_components == 4
        assert dsu.component_size(0) == 2

    def test_contains_and_len(self):
        dsu = UnionFind()
        dsu.union("x", "y")
        assert "x" in dsu and "z" not in dsu
        assert len(dsu) == 2

    def test_matches_networkx_components_on_random_graph(self, rng):
        graph = nx.gnp_random_graph(25, 0.12, seed=7)
        dsu = UnionFind()
        for node in graph.nodes:
            dsu.add(node)
        for left, right in graph.edges:
            dsu.union(left, right)
        for left in graph.nodes:
            for right in graph.nodes:
                expected = nx.has_path(graph, left, right)
                assert dsu.connected(left, right) == expected


class TestMaxFlow:
    def test_single_edge(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 5)
        assert network.max_flow("s", "t") == 5

    def test_series_bottleneck(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 10)
        network.add_edge("a", "t", 3)
        assert network.max_flow("s", "t") == 3

    def test_parallel_paths_add_up(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 2)
        network.add_edge("a", "t", 2)
        network.add_edge("s", "b", 3)
        network.add_edge("b", "t", 3)
        assert network.max_flow("s", "t") == 5

    def test_classic_textbook_instance(self):
        network = FlowNetwork()
        edges = [
            ("s", "a", 10), ("s", "b", 10), ("a", "b", 2),
            ("a", "t", 4), ("a", "c", 8), ("b", "c", 9),
            ("c", "t", 10),
        ]
        for u, v, capacity in edges:
            network.add_edge(u, v, capacity)
        assert network.max_flow("s", "t") == 14

    def test_disconnected_sink(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1)
        network.add_edge("b", "t", 1)
        assert network.max_flow("s", "t") == 0

    def test_unknown_nodes_give_zero(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1)
        assert network.max_flow("s", "missing") == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("s", "t", -1)

    def test_same_source_and_sink_rejected(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1)
        with pytest.raises(ValueError):
            network.max_flow("s", "s")

    def test_matches_networkx_on_random_networks(self, rng):
        for seed in range(4):
            graph = nx.gnp_random_graph(12, 0.3, seed=seed, directed=True)
            network = FlowNetwork()
            for u, v in graph.edges:
                capacity = int(rng.integers(1, 6))
                graph[u][v]["capacity"] = capacity
                network.add_edge(u, v, capacity)
            if 0 not in graph.nodes or 11 not in graph.nodes:
                continue
            expected = nx.maximum_flow_value(graph, 0, 11)
            assert network.max_flow(0, 11) == expected


class TestDisjointPaths:
    @staticmethod
    def grid_neighbours(vertex):
        i, j = vertex
        return [(i + 1, j), (i - 1, j), (i, j + 1), (i, j - 1)]

    def test_full_grid_has_side_many_paths(self):
        side = 4
        vertices = {(i, j) for i in range(side) for j in range(side)}
        sources = [(0, j) for j in range(side)]
        sinks = [(side - 1, j) for j in range(side)]
        count = max_vertex_disjoint_paths(vertices, self.grid_neighbours, sources, sinks)
        assert count == side

    def test_removing_a_row_cuts_everything(self):
        side = 4
        vertices = {(i, j) for i in range(side) for j in range(side) if i != 2}
        sources = [(0, j) for j in range(side)]
        sinks = [(side - 1, j) for j in range(side)]
        assert max_vertex_disjoint_paths(vertices, self.grid_neighbours, sources, sinks) == 0

    def test_single_corridor(self):
        # Only row j = 0 survives: exactly one disjoint path remains.
        side = 4
        vertices = {(i, 0) for i in range(side)} | {(0, j) for j in range(side)}
        sources = [(0, j) for j in range(side)]
        sinks = [(side - 1, j) for j in range(side)]
        assert max_vertex_disjoint_paths(vertices, self.grid_neighbours, sources, sinks) == 1

    def test_no_usable_sources(self):
        vertices = {(1, 0), (2, 0)}
        assert (
            max_vertex_disjoint_paths(vertices, self.grid_neighbours, [(0, 0)], [(2, 0)]) == 0
        )

    def test_paths_are_vertex_disjoint_not_just_edge_disjoint(self):
        # An hourglass: two sources and two sinks forced through one middle vertex.
        vertices = {"s1", "s2", "m", "t1", "t2"}
        adjacency = {
            "s1": ["m"], "s2": ["m"], "m": ["s1", "s2", "t1", "t2"],
            "t1": ["m"], "t2": ["m"],
        }
        count = max_vertex_disjoint_paths(
            vertices, lambda v: adjacency[v], ["s1", "s2"], ["t1", "t2"]
        )
        assert count == 1

    def test_matches_menger_on_triangular_lattice(self, rng):
        from repro.percolation import TriangularGrid

        grid = TriangularGrid(5)
        vertices = set(grid.vertices())
        count = max_vertex_disjoint_paths(
            vertices, grid.neighbours, grid.left_side(), grid.right_side()
        )
        assert count == 5
