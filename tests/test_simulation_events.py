"""Tests for the event-driven concurrent core: scheduler, network, histories.

Covers the discrete-event machinery itself (ordering, cancellation, latency
and link-fault knobs, crash/recover timelines), the zero-latency agreement
between the synchronous and event-driven protocol layers, the real-attempts
accounting, the aligned load accounting across protocol paths, and the
concurrent-history properties: interleaved writers produce strictly
increasing unique timestamps, reads concurrent with writes return old-or-new
(never a fabrication) at ``b`` colluders, and the checker catches the
``2b + 1``-colluder attack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimulationError, ThresholdQuorumSystem
from repro.analysis.empirical import synchronous_event_agreement
from repro.simulation import (
    AsyncQuorumClient,
    EventNetwork,
    EventScheduler,
    FaultInjector,
    FaultScenario,
    FaultTimeline,
    HistoryRecorder,
    LatencyModel,
    LinkFaults,
    OperationRecord,
    ReplicaServer,
    ReplicatedRegister,
    RetryPolicy,
    Timestamp,
    ValueTimestampPair,
    build_replicas,
    check_register_history,
    crash_recover_scenario,
    flaky_links_scenario,
    run_event_workload,
    run_scenario,
    slow_server_scenario,
)
from repro.simulation.messages import ReadRequest
from repro.simulation.server import BYZANTINE_BEHAVIOURS


@pytest.fixture
def small_system():
    """The 7-of-9 threshold system: 2-masking, fully enumerable, fast."""
    return ThresholdQuorumSystem(9, 7)


# ----------------------------------------------------------------------
# The scheduler.
# ----------------------------------------------------------------------
class TestEventScheduler:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("late"))
        scheduler.schedule(1.0, lambda: fired.append("early"))
        scheduler.schedule(2.0, lambda: fired.append("middle"))
        assert scheduler.run() == 3
        assert fired == ["early", "middle", "late"]
        assert scheduler.now == pytest.approx(3.0)

    def test_ties_break_in_scheduling_order(self):
        scheduler = EventScheduler()
        fired = []
        for label in range(5):
            scheduler.schedule(0.0, lambda label=label: fired.append(label))
        scheduler.run()
        assert fired == list(range(5))

    def test_callbacks_schedule_further_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                scheduler.schedule(1.0, lambda: chain(depth + 1))

        scheduler.schedule(0.0, lambda: chain(0))
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.now == pytest.approx(3.0)

    def test_cancellation_is_honoured(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda: fired.append("no"))
        scheduler.schedule(2.0, lambda: fired.append("yes"))
        event.cancel()
        assert scheduler.run() == 1
        assert fired == ["yes"]

    def test_run_until_stops_and_advances_clock(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        scheduler.run(until=2.0)
        assert fired == [1]
        assert scheduler.now == pytest.approx(2.0)
        scheduler.run()
        assert fired == [1, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-0.1, lambda: None)


# ----------------------------------------------------------------------
# Timing and link-fault knobs.
# ----------------------------------------------------------------------
class TestLatencyAndLinkModels:
    def test_zero_model_draws_no_randomness(self, rng):
        model = LatencyModel.zero()
        state = rng.bit_generator.state
        assert model.sample(rng, "s0") == 0.0
        assert rng.bit_generator.state == state

    def test_sample_respects_slow_factor(self, rng):
        model = LatencyModel(base=1.0, server_factors=(("slow", 3.0),))
        assert model.sample(rng, "slow") == pytest.approx(3.0)
        assert model.sample(rng, "fast") == pytest.approx(1.0)

    def test_jitter_reorders_messages(self, rng):
        model = LatencyModel.uniform(0.0, 1.0)
        draws = [model.sample(rng, "s") for _ in range(64)]
        assert any(late < early for early, late in zip(draws, draws[1:]))

    def test_validation(self):
        with pytest.raises(SimulationError):
            LatencyModel(base=-1.0)
        with pytest.raises(SimulationError):
            LatencyModel(server_factors=(("s", 0.0),))
        with pytest.raises(SimulationError):
            LinkFaults(loss=1.0)
        with pytest.raises(SimulationError):
            LinkFaults(duplication=-0.5)

    def test_loss_and_duplication_counts(self, rng):
        lossy = LinkFaults(loss=0.5)
        copies = [lossy.copies(rng) for _ in range(200)]
        assert 0 in copies and 1 in copies and 2 not in copies
        duplicating = LinkFaults(duplication=1.0)
        assert duplicating.copies(rng) == 2


class TestFaultTimeline:
    def test_static_and_transitions(self):
        healthy = FaultScenario.fault_free()
        degraded = FaultScenario(crashed=frozenset({0}))
        timeline = FaultTimeline([(0.0, healthy), (5.0, degraded)])
        assert timeline.is_responsive(0, 4.9)
        assert not timeline.is_responsive(0, 5.0)
        assert FaultTimeline.static(degraded).active(100.0) is degraded

    def test_validation(self):
        degraded = FaultScenario(crashed=frozenset({0}))
        with pytest.raises(SimulationError):
            FaultTimeline([])
        with pytest.raises(SimulationError):
            FaultTimeline([(1.0, degraded)])  # nothing in force at time 0
        with pytest.raises(SimulationError):
            FaultTimeline([(0.0, degraded), (0.0, degraded)])

    def test_slow_factor_comes_from_active_state(self):
        slow = FaultScenario(slow={0: 4.0})
        timeline = FaultTimeline([(0.0, FaultScenario.fault_free()), (2.0, slow)])
        assert timeline.slow_factor(0, 1.0) == pytest.approx(1.0)
        assert timeline.slow_factor(0, 3.0) == pytest.approx(4.0)

    def test_fault_scenario_slow_validation(self):
        with pytest.raises(SimulationError):
            FaultScenario(slow={0: 0.5})
        with pytest.raises(SimulationError):
            FaultScenario(crashed=frozenset({0}), slow={0: 2.0})


# ----------------------------------------------------------------------
# The event network.
# ----------------------------------------------------------------------
class TestEventNetwork:
    def make(self, *, crashed=frozenset(), latency=None, faults=None, seed=0):
        scheduler = EventScheduler()
        servers = {i: ReplicaServer(i) for i in range(3)}
        network = EventNetwork(
            servers,
            FaultScenario(crashed=frozenset(crashed)),
            scheduler=scheduler,
            latency=latency,
            faults=faults,
            rng=np.random.default_rng(seed),
        )
        return scheduler, network

    def test_reply_arrives_by_callback(self):
        scheduler, network = self.make()
        replies = []
        network.send(0, ReadRequest(client_id=0), lambda sid, reply: replies.append(sid))
        assert replies == []  # nothing happens until the scheduler runs
        scheduler.run()
        assert replies == [0]
        assert network.attempted_counts[0] == 1
        assert network.delivered_counts[0] == 1

    def test_crashed_server_is_silent_but_attempted(self):
        scheduler, network = self.make(crashed={1})
        replies = []
        network.send(1, ReadRequest(client_id=0), lambda sid, reply: replies.append(sid))
        scheduler.run()
        assert replies == []
        assert network.attempted_counts[1] == 1
        assert network.delivered_counts[1] == 0
        assert network.server(1).access_count == 0

    def test_mid_flight_crash_drops_request(self):
        # The request is sent while the server is alive but lands after the
        # crash transition: dead on arrival.
        scheduler = EventScheduler()
        servers = {0: ReplicaServer(0)}
        timeline = FaultTimeline(
            [(0.0, FaultScenario.fault_free()),
             (1.0, FaultScenario(crashed=frozenset({0})))]
        )
        network = EventNetwork(
            servers, timeline, scheduler=scheduler,
            latency=LatencyModel(base=2.0), rng=np.random.default_rng(0),
        )
        replies = []
        network.send(0, ReadRequest(client_id=0), lambda sid, reply: replies.append(sid))
        scheduler.run()
        assert replies == []
        assert network.delivered_counts[0] == 0

    def test_lost_messages_never_arrive(self):
        scheduler, network = self.make(faults=LinkFaults(loss=0.999999), seed=1)
        replies = []
        for _ in range(20):
            network.send(0, ReadRequest(client_id=0), lambda sid, reply: replies.append(sid))
        scheduler.run()
        assert replies == []
        assert network.attempted_counts[0] == 20

    def test_duplicated_requests_are_handled_twice(self):
        scheduler, network = self.make(faults=LinkFaults(duplication=1.0))
        replies = []
        network.send(0, ReadRequest(client_id=0), lambda sid, reply: replies.append(sid))
        scheduler.run()
        # Two request copies, each answered by a duplicated reply.
        assert network.server(0).access_count == 2
        assert len(replies) == 4

    def test_unknown_server_and_empty_request_raise(self):
        _, network = self.make()
        with pytest.raises(SimulationError):
            network.send(99, ReadRequest(client_id=0), lambda sid, reply: None)
        with pytest.raises(SimulationError):
            network.send(0, None, lambda sid, reply: None)


# ----------------------------------------------------------------------
# Zero-latency agreement: the synchronous layer is the special case.
# ----------------------------------------------------------------------
class TestZeroLatencyAgreement:
    def test_fault_free(self, small_system):
        report = synchronous_event_agreement(small_system, b=2, num_operations=80, seed=11)
        assert report.ok, report.mismatches

    def test_with_crashes_and_retries(self, small_system):
        scenario = FaultScenario(crashed=frozenset({0, 1}))
        report = synchronous_event_agreement(
            small_system, b=2, scenario=scenario, num_operations=60, seed=3
        )
        assert report.ok, report.mismatches

    @pytest.mark.parametrize("behaviour", sorted(BYZANTINE_BEHAVIOURS))
    def test_under_every_byzantine_behaviour(self, small_system, rng, behaviour):
        scenario = FaultInjector(small_system.universe, rng).exact(
            num_byzantine=2, num_crashed=1
        )
        report = synchronous_event_agreement(
            small_system,
            b=2,
            scenario=scenario,
            byzantine_behaviour=behaviour,
            num_operations=50,
            seed=7,
        )
        assert report.ok, report.mismatches

    def test_unavailable_operations_agree_too(self, small_system):
        scenario = FaultScenario(crashed=frozenset({0, 1, 2}))  # a transversal
        report = synchronous_event_agreement(
            small_system, b=2, scenario=scenario, num_operations=20, seed=9
        )
        assert report.ok, report.mismatches


# ----------------------------------------------------------------------
# Real attempts accounting (the hardcoded attempts=1 regression).
# ----------------------------------------------------------------------
class TestAttemptsAccounting:
    def test_attempts_accumulate_across_probes(self, rng):
        system = ThresholdQuorumSystem(5, 4)
        scenario = FaultScenario(crashed=frozenset({0}))
        register = ReplicatedRegister(system, b=0, scenario=scenario, rng=rng)
        client = register.client()
        results = [client.write(f"v{i}") for i in range(20)]
        assert all(result.success for result in results)
        total_attempts = sum(result.attempts for result in results)
        # Every probe touches exactly one 4-member quorum.
        assert sum(client.attempted_access_counts.values()) == 4 * total_attempts
        # The first write had no suspicion information yet, so on this seed
        # at least one operation needed more than one probe — the old
        # hardcoded attempts=1 would under-report this total.
        assert total_attempts > len(results)

    def test_failed_operations_charge_the_full_budget(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        scenario = FaultScenario(crashed=frozenset({0, 1, 2}))
        register = ReplicatedRegister(system, b=2, scenario=scenario, rng=rng)
        client = register.client(max_attempts=5)
        result = client.write("doomed")
        assert not result.success
        assert result.attempts == 5
        read_result = client.read()
        assert not read_result.success
        assert read_result.attempts == 5

    def test_write_phase_retry_counts_real_attempts(self):
        # A mid-operation crash between the timestamp query and the install
        # forces the write-phase retry path, which used to report
        # 2 * max_attempts regardless of the real count.
        system = ThresholdQuorumSystem(5, 4)
        scheduler = EventScheduler()
        servers = build_replicas(system, frozenset(), rng=np.random.default_rng(0))
        timeline = FaultTimeline(
            [(0.0, FaultScenario.fault_free()),
             (1.5, FaultScenario(crashed=frozenset({0})))]
        )
        network = EventNetwork(
            servers, timeline, scheduler=scheduler,
            latency=LatencyModel(base=1.0), rng=np.random.default_rng(1),
        )
        client = AsyncQuorumClient(
            0, system, network, b=0,
            policy=RetryPolicy(max_attempts=8, request_timeout=3.0),
            rng=np.random.default_rng(2),
        )
        results = []
        client.write("survivor", results.append)
        scheduler.run()
        (result,) = results
        assert result.success
        # The timestamp phase succeeded on the first probe (before the
        # crash); the install retried through at least one fresh quorum.
        assert result.attempts >= 2
        assert result.attempts < 16  # not the old 2 * max_attempts fiction
        assert 0 not in result.quorum


# ----------------------------------------------------------------------
# Load-definition agreement across the protocol paths (satellite 3).
# ----------------------------------------------------------------------
class TestLoadAccountingAgreement:
    def test_message_level_and_vectorised_loads_agree_under_crashes(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        scenario = FaultScenario(crashed=frozenset({0, 1}))
        register = ReplicatedRegister(system, b=2, scenario=scenario, rng=rng)
        client = register.client()
        operations = 400
        for index in range(operations):
            if index % 2 == 0:
                assert client.write(index).success
            else:
                assert client.read().success
        message_loads = register.empirical_loads()
        # Load values are genuine access frequencies: never above 1, even
        # though crashes force extra probes (the pre-fix accounting divided
        # raw deliveries by operations and could exceed 1 here).
        assert max(message_loads.values()) <= 1.0
        engine_result = run_scenario(
            system, b=2, num_operations=operations, scenario=scenario,
            rng=np.random.default_rng(123),
        )
        assert max(engine_result.per_server_load.values()) <= 1.0
        # Same definition, same steering limit: busiest-server frequencies
        # agree up to sampling noise.
        assert max(message_loads.values()) == pytest.approx(
            engine_result.empirical_load, abs=0.1
        )
        # Crashed servers take probes (attempted) but serve no load.
        assert message_loads[0] == 0.0
        assert register.attempted_loads()[0] > 0.0

    def test_event_layer_uses_the_same_definition(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        scenario = FaultScenario(crashed=frozenset({0, 1}))
        result = run_event_workload(
            system, b=2, num_clients=6, operations_per_client=40,
            scenario=scenario, latency=LatencyModel.uniform(1.0, 0.5), rng=rng,
        )
        assert result.availability == pytest.approx(1.0)
        assert max(result.per_server_load.values()) <= 1.0
        assert result.per_server_load[0] == 0.0


# ----------------------------------------------------------------------
# Concurrent histories (satellite 4 + acceptance demo).
# ----------------------------------------------------------------------
class TestConcurrentHistories:
    def test_interleaved_writers_produce_unique_increasing_timestamps(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=15,
            write_fraction=1.0, latency=LatencyModel.uniform(1.0, 1.0),
            rng=rng, keep_history=True,
        )
        writes = [record for record in result.history if record.kind == "write"]
        assert len(writes) == 120
        assert result.check.concurrent_pairs > 0, "history must actually interleave"
        timestamps = [record.attempted_pair.timestamp for record in writes]
        assert len(set(timestamps)) == len(timestamps), "duplicate write timestamp"
        by_client: dict = {}
        for record in sorted(writes, key=lambda r: r.invoked_at):
            previous = by_client.get(record.client_id)
            if previous is not None:
                assert record.attempted_pair.timestamp > previous
            by_client[record.client_id] = record.attempted_pair.timestamp
        assert result.check.ok, result.check.violations

    @pytest.mark.parametrize("behaviour", sorted(BYZANTINE_BEHAVIOURS))
    def test_concurrent_reads_return_old_or_new_at_b_colluders(self, rng, behaviour):
        # >= 8 interleaved clients, b colluders: every successful read must
        # return the initial value or a genuinely written value (old or new
        # of a concurrent write), and never a Byzantine fabrication — under
        # every adversarial behaviour.
        system = ThresholdQuorumSystem(9, 7)
        byzantine = FaultInjector(system.universe, rng).exact(num_byzantine=2)
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=12,
            scenario=byzantine, byzantine_behaviour=behaviour,
            latency=LatencyModel.uniform(1.0, 1.0), rng=rng, keep_history=True,
        )
        assert result.check.concurrent_pairs > 0
        assert result.check.ok, result.check.violations
        legitimate = {None} | {
            record.attempted_pair.value
            for record in result.history
            if record.kind == "write" and record.attempted_pair is not None
        }
        for record in result.history:
            if record.kind == "read" and record.success:
                assert record.value in legitimate

    def test_beyond_the_bound_the_checker_catches_fabrication(self, rng):
        # The negative case: 2b + 1 colluders answering reads reach the
        # b + 1 vouching threshold and the history checker must flag it.
        system = ThresholdQuorumSystem(9, 7)
        byzantine = FaultInjector(system.universe, rng).exact(num_byzantine=5)
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=10,
            scenario=byzantine, byzantine_behaviour="forge-on-read",
            latency=LatencyModel.uniform(1.0, 1.0), rng=rng,
            allow_overload=True,
        )
        assert not result.check.ok
        assert result.check.fabricated_reads > 0
        assert result.consistency_violations == result.check.fabricated_reads

    def test_crash_recover_mid_run_keeps_history_consistent(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        scenario = crash_recover_scenario(
            system.universe, [0, 1], down_at=20.0, up_at=60.0,
            latency=LatencyModel.uniform(1.0, 0.5),
        )
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=12,
            scenario=scenario, rng=rng,
        )
        assert result.check.ok, result.check.violations
        assert result.availability > 0.9

    def test_recovered_servers_are_exonerated_and_serve_load_again(self, rng):
        # Regression: suspicion must not be permanent.  Servers crashed only
        # in a short early window should, once recovered and answering,
        # leave the clients' suspected sets and take quorum load again.
        system = ThresholdQuorumSystem(9, 7)
        scenario = crash_recover_scenario(
            system.universe, [0, 1], down_at=5.0, up_at=30.0,
            latency=LatencyModel.uniform(1.0, 0.5),
        )
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=60,
            scenario=scenario, rng=rng,
        )
        assert result.check.ok, result.check.violations
        assert result.per_server_load[0] > 0.0
        assert result.per_server_load[1] > 0.0

    def test_slow_servers_are_correct_but_late(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        slow = {0: 6.0, 1: 6.0}
        scenario = slow_server_scenario(
            system.universe, slow, latency=LatencyModel.uniform(1.0, 0.5)
        )
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=12,
            scenario=scenario, rng=rng,
        )
        assert result.check.ok, result.check.violations
        assert result.latency_p99 >= result.latency_p50 >= 0.0

    def test_slowness_bites_under_a_pure_tail_latency_model(self, rng):
        # Regression: the service stretch must scale with the whole latency
        # model (tail_mean included), not just base/jitter — a slow server
        # under an exponential-tail-only model must actually be slower.
        system = ThresholdQuorumSystem(5, 4)
        tail_only = LatencyModel(tail_mean=1.0)
        fast = run_event_workload(
            system, b=0, num_clients=4, operations_per_client=20,
            latency=tail_only, rng=np.random.default_rng(42),
        )
        slow = run_event_workload(
            system, b=0, num_clients=4, operations_per_client=20,
            scenario=slow_server_scenario(
                system.universe, {0: 10.0, 1: 10.0}, latency=tail_only
            ),
            rng=np.random.default_rng(42),
        )
        assert slow.latency_mean > fast.latency_mean

    def test_explicit_behaviour_overrides_timing_scenario_default(self, rng):
        # An explicitly passed byzantine_behaviour must win over the
        # TimingScenario's bundled default.
        system = ThresholdQuorumSystem(9, 7)
        byz = FaultInjector(system.universe, rng).exact(num_byzantine=2).byzantine
        scenario = slow_server_scenario(
            system.universe, {sorted(system.universe.elements)[-1]: 2.0},
            byzantine=byz, latency=LatencyModel.uniform(1.0, 0.5),
        )
        assert scenario.byzantine_behaviour == "fabricate-timestamp"
        result = run_event_workload(
            system, b=2, num_clients=4, operations_per_client=6,
            scenario=scenario, byzantine_behaviour="stale", rng=rng,
            keep_history=True,
        )
        assert result.check.ok
        # Stale replicas answer with the initial timestamp; fabricate would
        # have pushed every installed counter past 10**9.
        assert all(
            record.attempted_pair.timestamp.counter < 10**9
            for record in result.history
            if record.kind == "write" and record.attempted_pair is not None
        )

    def test_same_instant_starts_count_as_concurrent(self):
        from repro.simulation.history import _count_concurrent_pairs

        def rec(invoked, responded):
            return OperationRecord(
                client_id=0, kind="read", invoked_at=invoked,
                responded_at=responded, success=True,
            )

        assert _count_concurrent_pairs([rec(0, 5), rec(0, 5), rec(0, 5)]) == 3
        assert _count_concurrent_pairs([rec(0, 1), rec(1, 2)]) == 0
        assert _count_concurrent_pairs([rec(0, 2), rec(1, 3)]) == 1
        assert _count_concurrent_pairs([rec(0, 0), rec(0, 0)]) == 0

    def test_flaky_links_preserve_safety(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        scenario = flaky_links_scenario(loss=0.05, duplication=0.05)
        result = run_event_workload(
            system, b=2, num_clients=8, operations_per_client=12,
            scenario=scenario, rng=rng,
        )
        assert result.check.ok, result.check.violations

    def test_sequential_clients_cannot_overlap_themselves(self, small_system):
        scheduler = EventScheduler()
        servers = build_replicas(small_system, frozenset(), rng=np.random.default_rng(0))
        network = EventNetwork(
            servers, FaultScenario.fault_free(), scheduler=scheduler,
            latency=LatencyModel(base=1.0), rng=np.random.default_rng(1),
        )
        client = AsyncQuorumClient(0, small_system, network, b=2,
                                   rng=np.random.default_rng(2))
        client.write("first", None)
        with pytest.raises(SimulationError):
            client.write("second", None)


# ----------------------------------------------------------------------
# The checker itself, on synthetic histories.
# ----------------------------------------------------------------------
class TestHistoryChecker:
    @staticmethod
    def write_record(client_id, invoked, responded, counter, *, success=True, value="v"):
        pair = ValueTimestampPair(value=value, timestamp=Timestamp(counter, client_id))
        return OperationRecord(
            client_id=client_id, kind="write", invoked_at=invoked,
            responded_at=responded, success=success, value=value,
            timestamp=pair.timestamp if success else None,
            attempted_pair=pair,
        )

    @staticmethod
    def read_record(client_id, invoked, responded, counter, owner, *, value="v"):
        return OperationRecord(
            client_id=client_id, kind="read", invoked_at=invoked,
            responded_at=responded, success=True, value=value,
            timestamp=Timestamp(counter, owner),
        )

    def test_clean_history_passes(self):
        records = [
            self.write_record(0, 0.0, 1.0, 1),
            self.read_record(1, 2.0, 3.0, 1, 0),
        ]
        check = check_register_history(records)
        assert check.ok
        assert check.operations == 2

    def test_detects_fabricated_read(self):
        records = [
            self.write_record(0, 0.0, 1.0, 1),
            self.read_record(1, 2.0, 3.0, 99, 123, value="forged"),
        ]
        check = check_register_history(records)
        assert not check.ok
        assert check.fabricated_reads == 1

    def test_detects_stale_read(self):
        records = [
            self.write_record(0, 0.0, 1.0, 1, value="old"),
            self.write_record(0, 2.0, 3.0, 2, value="new"),
            # Read starts after the second write completed but returns the
            # first value: stale.
            self.read_record(1, 4.0, 5.0, 1, 0, value="old"),
        ]
        check = check_register_history(records)
        assert not check.ok
        assert check.stale_reads == 1

    def test_concurrent_read_may_return_old_value(self):
        records = [
            self.write_record(0, 0.0, 1.0, 1, value="old"),
            self.write_record(0, 2.0, 6.0, 2, value="new"),
            # Read overlaps the second write: old value is legitimate.
            self.read_record(1, 3.0, 4.0, 1, 0, value="old"),
        ]
        assert check_register_history(records).ok

    def test_detects_duplicate_write_timestamps(self):
        records = [
            self.write_record(0, 0.0, 1.0, 1),
            self.write_record(1, 0.5, 1.5, 1),
        ]
        # Different clients: distinct (counter, client) pairs — fine.
        assert check_register_history(records).ok
        duplicated = [
            self.write_record(0, 0.0, 1.0, 1),
            self.write_record(0, 2.0, 3.0, 1),
        ]
        check = check_register_history(duplicated)
        assert check.duplicate_write_timestamps == 1

    def test_detects_write_order_violation(self):
        records = [
            self.write_record(0, 0.0, 1.0, 5),
            # Starts after the first completed but installs a smaller stamp.
            self.write_record(1, 2.0, 3.0, 4),
        ]
        check = check_register_history(records)
        assert not check.ok
        assert check.write_order_violations >= 1

    def test_recorder_collects_and_checks(self):
        from repro.simulation import OperationResult

        recorder = HistoryRecorder()
        recorder.record(
            client_id=0, kind="write", invoked_at=0.0, responded_at=1.0,
            result=OperationResult(
                success=True, value="v", timestamp=Timestamp(1, 0),
                quorum=frozenset({0}), attempts=1,
            ),
            attempted_pair=ValueTimestampPair(value="v", timestamp=Timestamp(1, 0)),
        )
        assert recorder.check().ok
