"""Agreement tests: the bitmask engine against the frozenset reference paths.

The :mod:`repro.core.bitset` engine is the representation the hot paths run
on; its contract is that every measure it powers — load, failure probability,
masking verification, transversals, and the combinatorial parameters they
build on — is *identical* to what the plain frozenset enumeration would
produce.  These tests re-implement the pre-engine reference computations in
terms of frozensets and ``itertools`` and assert exact agreement on small
instances of all eight quorum-enumerating constructions, plus random explicit
systems via hypothesis.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BoostedFPP,
    CrumblingWall,
    ExplicitQuorumSystem,
    FiniteProjectivePlane,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    exact_failure_probability,
    exact_load,
    masking_report,
    masking_threshold,
)
from repro.core import bitset
from repro.core.transversal import is_transversal, minimal_transversal


def _small_systems():
    """One small, fully enumerable instance of every construction.

    M-Path only enumerates its straight-line sub-family, so its explicit
    snapshot is used wherever a full quorum list is required; the raw object
    is still exercised by the mask-generator test below.
    """
    return [
        masking_threshold(9, 1),
        MaskingGrid(4, 1),
        MGrid(4, 1),
        MPath(3, 1).straight_line_subsystem(),
        RecursiveThreshold(3, 2, 2),
        CrumblingWall([1, 2, 3]),
        BoostedFPP(2, 1),
        FiniteProjectivePlane(2),
    ]


SYSTEM_IDS = [
    "threshold",
    "grid",
    "mgrid",
    "mpath",
    "recursive-threshold",
    "crumbling-wall",
    "boost-fpp",
    "fpp",
]


@pytest.fixture(params=range(len(SYSTEM_IDS)), ids=SYSTEM_IDS)
def system(request):
    return _small_systems()[request.param]


# ----------------------------------------------------------------------------
# Reference (frozenset) implementations of the measures the engine replaced.
# ----------------------------------------------------------------------------

def reference_incidence(system) -> np.ndarray:
    quorum_list = system.quorums()
    matrix = np.zeros((len(quorum_list), system.n), dtype=bool)
    for row, quorum in enumerate(quorum_list):
        for element in quorum:
            matrix[row, system.universe.index_of(element)] = True
    return matrix


def reference_min_intersection(system) -> int:
    quorum_list = system.quorums()
    if len(quorum_list) == 1:
        return len(quorum_list[0])
    return min(
        len(first & second)
        for first, second in itertools.combinations(quorum_list, 2)
    )


def reference_degrees(system) -> dict:
    counts = {element: 0 for element in system.universe}
    for quorum in system.quorums():
        for element in quorum:
            counts[element] += 1
    return counts


def reference_exact_failure_probability(system, p: float) -> float:
    """The seed implementation: a Python loop over all 2^n alive-sets."""
    n = system.n
    universe_order = {element: i for i, element in enumerate(system.universe)}
    quorum_masks = []
    for quorum in system.quorums():
        mask = 0
        for element in quorum:
            mask |= 1 << universe_order[element]
        quorum_masks.append(mask)
    survive = 0.0
    for alive_mask in range(1 << n):
        if any(mask & alive_mask == mask for mask in quorum_masks):
            alive_count = alive_mask.bit_count()
            survive += (1.0 - p) ** alive_count * p ** (n - alive_count)
    return 1.0 - survive


def reference_consistency_holds(system, b: int) -> bool:
    required = 2 * b + 1
    quorum_list = system.quorums()
    if len(quorum_list) == 1:
        return len(quorum_list[0]) >= required
    return all(
        len(first & second) >= required
        for first, second in itertools.combinations(quorum_list, 2)
    )


# ----------------------------------------------------------------------------
# Mask generators and cached array views.
# ----------------------------------------------------------------------------

class TestMaskGeneration:
    def test_masks_align_with_frozensets(self, system):
        universe = system.universe
        masks = list(system.iter_quorum_masks())
        quorums = list(system.iter_quorums())
        assert len(masks) == len(quorums)
        for mask, quorum in zip(masks, quorums):
            assert bitset.mask_to_frozenset(mask, universe) == quorum
            assert bitset.mask_of(quorum, universe) == mask

    def test_mpath_raw_masks_align(self):
        # The raw M-Path object cannot materialise quorums(), but its mask
        # and frozenset generators must still describe the same sub-family.
        mpath = MPath(3, 1)
        for mask, quorum in zip(mpath.iter_quorum_masks(), mpath.iter_quorums()):
            assert bitset.mask_to_frozenset(mask, mpath.universe) == quorum

    def test_incidence_matrix_matches_reference(self, system):
        engine = system.bitset_engine()
        np.testing.assert_array_equal(
            engine.incidence_matrix(), reference_incidence(system)
        )

    def test_quorum_sizes_match(self, system):
        engine = system.bitset_engine()
        expected = [len(quorum) for quorum in system.quorums()]
        assert engine.quorum_sizes().tolist() == expected


# ----------------------------------------------------------------------------
# Combinatorial measures.
# ----------------------------------------------------------------------------

class TestMeasures:
    def test_min_intersection_matches_reference(self, system):
        assert system.min_intersection_size() == reference_min_intersection(system)

    def test_degrees_match_reference(self, system):
        assert system.degrees() == reference_degrees(system)

    def test_masking_reports_match_reference(self, system):
        for b in range(0, system.masking_bound() + 2):
            report = masking_report(system, b)
            assert report.consistent == reference_consistency_holds(system, b)
            assert report.is_masking == (
                report.consistent and report.resilient
            )
            assert masking_report(system, b).is_masking == system.is_b_masking(b)


# ----------------------------------------------------------------------------
# Load, availability, transversals.
# ----------------------------------------------------------------------------

class TestLoadAndAvailability:
    def test_exact_load_matches_reference_incidence(self, system):
        # The LP must see exactly the matrix the frozenset path would have
        # assembled; with identical inputs HiGHS is deterministic, so the
        # optimal load from the engine-built incidence is the same number.
        from scipy import optimize

        incidence = reference_incidence(system).astype(float)
        num_quorums, num_elements = incidence.shape
        objective = np.zeros(num_quorums + 1)
        objective[-1] = 1.0
        upper_matrix = np.hstack([incidence.T, -np.ones((num_elements, 1))])
        equality_matrix = np.zeros((1, num_quorums + 1))
        equality_matrix[0, :num_quorums] = 1.0
        result = optimize.linprog(
            objective,
            A_ub=upper_matrix,
            b_ub=np.zeros(num_elements),
            A_eq=equality_matrix,
            b_eq=np.array([1.0]),
            bounds=[(0.0, None)] * num_quorums + [(0.0, 1.0)],
            method="highs",
        )
        assert result.success
        assert exact_load(system).load == float(result.x[-1])

    @pytest.mark.parametrize("p", [0.2, 0.8])
    def test_exact_failure_probability_matches_reference(self, system, p):
        if system.n > 16 or system.num_quorums() > 20:
            pytest.skip("reference enumeration too slow for this instance")
        engine_value = exact_failure_probability(system, p).value
        assert engine_value == reference_exact_failure_probability(system, p)

    def test_transversal_engines_agree(self, system):
        quorums = system.quorums()
        milp = minimal_transversal(quorums, engine="milp")
        assert is_transversal(milp, quorums)
        assert len(milp) == system.to_explicit().min_transversal_size()
        if len(quorums) <= 100:
            bnb = minimal_transversal(quorums, engine="branch-and-bound")
            assert len(milp) == len(bnb)


# ----------------------------------------------------------------------------
# Random explicit systems.
# ----------------------------------------------------------------------------

@st.composite
def random_explicit_systems(draw):
    """Random quorum sets sharing a core element (so Definition 3.1 holds)."""
    n = draw(st.integers(min_value=2, max_value=8))
    core = draw(st.integers(min_value=0, max_value=n - 1))
    num_quorums = draw(st.integers(min_value=1, max_value=6))
    quorums = []
    for _ in range(num_quorums):
        members = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
        )
        quorums.append(frozenset(members | {core}))
    return ExplicitQuorumSystem(range(n), quorums, name="random")


class TestRandomSystems:
    @given(random_explicit_systems())
    @settings(max_examples=30, deadline=None)
    def test_engine_measures_agree(self, system):
        assert system.min_intersection_size() == reference_min_intersection(system)
        assert system.degrees() == reference_degrees(system)
        engine = system.bitset_engine()
        np.testing.assert_array_equal(
            engine.incidence_matrix(), reference_incidence(system)
        )

    @given(random_explicit_systems(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_exact_failure_probability_agrees(self, system, p):
        assert (
            exact_failure_probability(system, p).value
            == reference_exact_failure_probability(system, p)
        )
