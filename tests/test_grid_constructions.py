"""Unit tests for the grid constructions: RegularGrid and the [MR98a] MaskingGrid."""

from __future__ import annotations

import pytest

from repro import ConstructionError, MaskingGrid, RegularGrid, exact_load, verify_masking
from repro.constructions.grid import grid_side_for, render_grid_quorum


class TestGridSideHelper:
    def test_perfect_squares(self):
        assert grid_side_for(49) == 7
        assert grid_side_for(1024) == 32

    def test_non_squares_rejected(self):
        with pytest.raises(ConstructionError):
            grid_side_for(50)


class TestRegularGrid:
    def test_parameters_match_enumeration(self, regular_grid_4):
        explicit = regular_grid_4.to_explicit()
        assert regular_grid_4.num_quorums() == 16 == explicit.num_quorums()
        assert explicit.min_quorum_size() == regular_grid_4.min_quorum_size() == 7
        assert explicit.min_intersection_size() == regular_grid_4.min_intersection_size() == 2
        assert explicit.min_transversal_size() == regular_grid_4.min_transversal_size() == 4

    def test_it_is_a_valid_regular_system(self, regular_grid_4):
        regular_grid_4.to_explicit().validate()
        assert regular_grid_4.masking_bound() == 0

    def test_load_formula_and_lp_agree(self, regular_grid_4):
        assert regular_grid_4.load() == pytest.approx(7 / 16)
        assert exact_load(regular_grid_4).load == pytest.approx(7 / 16, abs=1e-6)

    def test_small_side_rejected(self):
        with pytest.raises(ConstructionError):
            RegularGrid(1)

    def test_sample_quorum_is_row_plus_column(self, regular_grid_4, rng):
        quorum = regular_grid_4.sample_quorum(rng)
        assert quorum in set(regular_grid_4.quorums())

    def test_crash_probability_monotone(self, regular_grid_4, rng):
        low = regular_grid_4.crash_probability(0.05, trials=3000, rng=rng)
        high = regular_grid_4.crash_probability(0.5, trials=3000, rng=rng)
        assert low < high


class TestMaskingGrid:
    def test_figure_parameters(self, masking_grid_9_2):
        # side = 9, b = 2: quorums are one column plus five full rows.
        assert masking_grid_9_2.n == 81
        assert masking_grid_9_2.min_quorum_size() == 5 * 9 + 4
        assert masking_grid_9_2.min_transversal_size() == 9 - 4
        assert masking_grid_9_2.num_quorums() == 9 * 126

    def test_masking_verified_literally_on_a_small_instance(self):
        system = MaskingGrid(5, 1)
        verify_masking(system, 1)
        assert system.is_b_masking(1)

    def test_analytic_values_match_enumeration_small(self):
        system = MaskingGrid(5, 1)
        explicit = system.to_explicit()
        assert explicit.min_quorum_size() == system.min_quorum_size() == 3 * 5 + 2
        assert explicit.min_transversal_size() == system.min_transversal_size() == 3
        assert explicit.min_intersection_size() == system.min_intersection_size()

    def test_infeasible_parameters_rejected(self):
        with pytest.raises(ConstructionError):
            MaskingGrid(5, 3)   # 2b+1 = 7 > 5
        with pytest.raises(ConstructionError):
            MaskingGrid(7, 3)   # resilience 0 < b
        with pytest.raises(ConstructionError):
            MaskingGrid(9, -1)

    def test_load_close_to_2b_over_sqrt_n(self, masking_grid_9_2):
        # Table 2: load ~ (2b+2)/sqrt(n).
        assert masking_grid_9_2.load() == pytest.approx(49 / 81)
        assert masking_grid_9_2.load() == pytest.approx((2 * 2 + 2) / 9, rel=0.25)

    def test_fairness(self, masking_grid_9_2):
        # All quorums have equal size; degrees are equal by row/column symmetry.
        explicit = MaskingGrid(5, 1).to_explicit()
        assert explicit.fairness() is not None

    def test_availability_degrades_with_size(self, rng):
        # Table 2: Fp -> 1 as n grows (for fixed p).
        small = MaskingGrid(5, 1).crash_probability(0.15, trials=4000, rng=rng)
        large = MaskingGrid(11, 1).crash_probability(0.15, trials=4000, rng=rng)
        assert large > small

    def test_sample_quorum_structure(self, masking_grid_9_2, rng):
        quorum = masking_grid_9_2.sample_quorum(rng)
        assert len(quorum) == masking_grid_9_2.min_quorum_size()


class TestRendering:
    def test_render_marks_quorum_cells(self):
        quorum = frozenset({(0, 0), (0, 1), (1, 0)})
        picture = render_grid_quorum(2, quorum)
        lines = picture.splitlines()
        assert lines[0] == "# #"
        assert lines[1] == "# ."

    def test_render_size(self):
        picture = render_grid_quorum(4, frozenset())
        assert len(picture.splitlines()) == 4
