"""End-to-end tests of the networked service: real replica processes.

Each test spawns a cluster of ``python -m repro serve --index i`` OS
processes via :class:`ServiceCluster`, drives live TCP traffic through
:func:`run_load`, and replays the recorded history through the same
checker and conformance machinery the simulators use — the Lemma 3.6
guarantees (zero fabricated, zero stale reads at ``byzantine <= b``) must
hold over real sockets exactly as they do in simulation.

Socket tests skip gracefully on runners that forbid loopback listeners or
subprocess spawning.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.analysis import recovery_conformance, service_conformance
from repro.api.registry import SystemSpec
from repro.service import (
    ClusterSpec,
    ServiceCluster,
    ServiceQuorumClient,
    run_load,
)
from repro.exceptions import ServiceError
from repro.simulation.client import RetryPolicy
from repro.simulation.history import check_register_history

OPS = 160
CLIENTS = 8


def _loopback_available() -> bool:
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_available(), reason="loopback sockets unavailable on this runner"
)

THRESHOLD_5 = SystemSpec(construction="threshold", params={"n": 5, "b": 1})


@pytest.fixture
def cluster_factory(tmp_path):
    """Start clusters, guaranteeing teardown even when a test fails."""
    started = []

    def factory(spec: ClusterSpec) -> ServiceCluster:
        cluster = ServiceCluster(spec, tmp_path / f"run-{len(started)}")
        try:
            cluster.start()
        except ServiceError as exc:  # pragma: no cover - sandboxed runners
            cluster.terminate()
            pytest.skip(f"cannot spawn replica processes: {exc}")
        started.append(cluster)
        return cluster

    yield factory
    for cluster in started:
        cluster.terminate()


def _drive(cluster: ServiceCluster, **kwargs):
    defaults = dict(
        b=cluster.b,
        operations=OPS,
        clients=CLIENTS,
        policy=RetryPolicy(request_timeout=2.0),
        seed=7,
        replica_endpoints=[
            {"index": h.index, "host": h.host, "port": h.port}
            for h in cluster.replicas
        ],
    )
    defaults.update(kwargs)
    return asyncio.run(run_load(cluster.system, cluster.endpoints(), **defaults))


# ----------------------------------------------------------------------
# The headline guarantee: live Byzantine replica, clean history.
# ----------------------------------------------------------------------
def test_live_cluster_masks_byzantine_replica(cluster_factory):
    """5 real replicas, one lying on every read: zero fabricated/stale."""
    cluster = cluster_factory(
        ClusterSpec(THRESHOLD_5, byzantine=1, byzantine_behaviour="forge-on-read")
    )
    result = _drive(cluster)
    assert result.operations == OPS
    assert result.check.ok, result.check.violations
    assert result.check.fabricated_reads == 0
    assert result.check.stale_reads == 0
    # The recorded history replays through the standalone checker too.
    assert check_register_history(result.records).ok

    report = service_conformance(result)
    failed = [c.metric for c in report.checks if not c.ok]
    assert report.ok, failed
    assert {"fabricated-reads", "stale-read-rate", "history-safety"} <= {
        c.metric for c in report.checks
    }


def test_live_report_shape_and_replica_metrics(cluster_factory):
    cluster = cluster_factory(ClusterSpec(THRESHOLD_5))
    result = _drive(cluster)
    report = result.report(strategy_label="uniform")
    assert report["engine"] == "service"
    assert report["consistent"] is True
    assert report["availability"] == 1.0
    assert 0.0 < report["empirical_load"] <= 1.0
    assert report["latency_p50"] is not None

    service = report["service"]
    assert service["clients"] == CLIENTS
    assert service["check"]["ok"] is True
    assert len(service["replica_status"]) == 5
    assert len(service["replica_metrics"]) == 5
    for status in service["replica_status"]:
        assert status["ok"] is True
        assert status["type"] == "STATUS_REPLY"
    # Every replica served protocol traffic and measured its latencies.
    served = sum(
        sum(metrics["operations"].values()) for metrics in service["replica_metrics"]
    )
    assert served > 0
    for metrics in service["replica_metrics"]:
        assert metrics["latency_seconds"]["count"] >= 0
        assert metrics["protocol_errors"] == 0


def test_stalled_replica_is_steered_around(cluster_factory):
    """A stalled (slow) replica costs timeouts, not consistency."""
    cluster = cluster_factory(ClusterSpec(THRESHOLD_5))
    asyncio.run(cluster.stall(0))
    try:
        result = _drive(
            cluster,
            operations=60,
            clients=4,
            policy=RetryPolicy(request_timeout=0.5),
        )
    finally:
        asyncio.run(cluster.resume(0))
    assert result.check.ok, result.check.violations
    assert len(result.successful) == 60  # steering finds quorums avoiding 0
    status = asyncio.run(cluster.status(0))
    assert status["stalled"] is False  # resume took effect


def test_crash_and_restart_preserve_staleness_bound(cluster_factory):
    """The *non-durable* crash/restart regression: without ``data_root`` a
    restarted replica rejoins with its state wiped, so each follow-up run
    must chain ``initial_pair`` from the previous run's ``final_pair`` to
    tell the checker what is legitimately readable.  Even so, the
    state-wiped replica never causes a stale or fabricated read — its
    stale answers are simply short of the b+1 vouch threshold.  (Durable
    clusters need none of this chaining; see the ``durable`` tests below.)
    """
    cluster = cluster_factory(ClusterSpec(THRESHOLD_5))
    before = _drive(cluster, operations=40, clients=4)
    assert before.check.ok and len(before.successful) == 40

    cluster.kill(2)
    assert not cluster.replicas[2].alive
    # Each follow-up run inherits the register state the previous one left
    # behind; final_pair tells its checker what is legitimately readable.
    during = _drive(
        cluster, operations=60, clients=4, seed=11, initial_pair=before.final_pair
    )
    assert during.check.ok, during.check.violations
    assert len(during.successful) == 60  # full availability around one crash
    assert during.timeouts > 0  # the dead replica did cost probes

    cluster.restart(2)
    assert cluster.replicas[2].alive
    # Memory-only: the rejoined replica really did lose everything.
    status = asyncio.run(cluster.status(2))
    assert status["storage"] == {"durable": False}
    assert status["ts"] == [0, -1]
    after = _drive(
        cluster, operations=60, clients=4, seed=13, initial_pair=during.final_pair
    )
    assert after.check.ok, after.check.violations
    assert len(after.successful) == 60
    # The restarted replica answers protocol traffic again.
    metrics = asyncio.run(cluster.metrics(2))
    assert sum(metrics["operations"].values()) > 0


# ----------------------------------------------------------------------
# Durable clusters: crash recovery from the write-ahead log.
# ----------------------------------------------------------------------
def test_durable_replica_recovers_from_wal_mid_run(cluster_factory, tmp_path):
    """The live durability demo: five durable replicas under open-loop
    load, one SIGKILLed mid-run and restarted from its write-ahead log
    while traffic continues.  The merged history must pass the register
    checker, and recovery conformance must confirm the journal-before-ack
    contract: the replica rejoined with a timestamp at least as new as
    every write it ever acked."""
    cluster = cluster_factory(
        ClusterSpec(THRESHOLD_5, data_root=str(tmp_path / "state"), fsync="always")
    )

    async def scenario():
        task = asyncio.create_task(
            run_load(
                cluster.system,
                cluster.endpoints(),
                b=cluster.b,
                operations=240,
                clients=6,
                mode="open",
                rate=120.0,  # ~2s of scheduled arrivals: room for the crash
                policy=RetryPolicy(request_timeout=2.0),
                seed=7,
                replica_endpoints=[
                    {"index": h.index, "host": h.host, "port": h.port}
                    for h in cluster.replicas
                ],
            )
        )
        await asyncio.sleep(0.6)
        cluster.kill(2)
        await asyncio.sleep(0.3)
        await asyncio.to_thread(cluster.restart, 2)
        result = await task
        status = await cluster.status(2)
        return result, status

    result, status = asyncio.run(scenario())
    assert result.check.ok, result.check.violations
    assert len(result.successful) == 240
    # STATUS surfaces the storage health of the recovered store.
    storage = status["storage"]
    assert storage["durable"] is True
    assert storage["fsync"] == "always"
    assert storage["recovery_dropped_bytes"] == 0  # SIGKILL leaves no torn tail
    # The journal-before-ack contract, checked exactly (no slack).
    report = recovery_conformance(
        result,
        server_id=cluster.system.universe.element_at(2),
        recovered_timestamp=status["ts"],
    )
    failed = [c.metric for c in report.checks if not c.ok]
    assert report.ok, failed


def test_durable_cluster_full_restart_needs_no_chaining(cluster_factory, tmp_path):
    """Kill *all five* replicas, restart them from their stores: the
    b+1-vouched discovery recovers exactly the pre-crash register, and a
    follow-up run passes the checker **without** any client-side
    ``initial_pair`` chaining from the previous run object."""
    cluster = cluster_factory(
        ClusterSpec(THRESHOLD_5, data_root=str(tmp_path / "state"), snapshot_every=8)
    )
    before = _drive(cluster, operations=40, clients=4)
    assert before.check.ok and len(before.successful) == 40

    for index in range(5):
        cluster.kill(index)
    for index in range(5):
        cluster.restart(index)

    # Server-side discovery replaces the old chaining: the recovered state
    # is vouched for by b+1 restarted replicas, not remembered by a client.
    discovered = asyncio.run(cluster.discover_pair())
    assert discovered is not None
    assert discovered == before.final_pair

    after = _drive(cluster, operations=60, clients=4, seed=13, initial_pair=discovered)
    assert after.check.ok, after.check.violations
    assert len(after.successful) == 60

    status = asyncio.run(cluster.status(1))
    report = recovery_conformance(
        before,
        server_id=cluster.system.universe.element_at(1),
        recovered_timestamp=status["ts"],
        post_result=after,
    )
    failed = [c.metric for c in report.checks if not c.ok]
    assert report.ok, failed
    assert {"recovered-timestamp", "post-restart-fabricated", "post-restart-stale-rate"} <= {
        c.metric for c in report.checks
    }


def test_byzantine_overload_requires_explicit_opt_in():
    with pytest.raises(ServiceError, match="exceed the masking"):
        ClusterSpec(THRESHOLD_5, byzantine=2).resolve()
    system, b = ClusterSpec(THRESHOLD_5, byzantine=2, allow_overload=True).resolve()
    assert (system.n, b) == (5, 1)


def test_open_loop_mode_follows_trace_schedule(cluster_factory):
    cluster = cluster_factory(ClusterSpec(THRESHOLD_5))
    result = _drive(cluster, operations=48, clients=6, mode="open", rate=200.0)
    assert result.check.ok
    assert len(result.successful) == 48
    assert result.duration > 0.0


def test_single_client_sequential_semantics(cluster_factory):
    """One client alone sees its own writes — the simplest sanity check."""
    cluster = cluster_factory(ClusterSpec(THRESHOLD_5))

    async def scenario():
        client = ServiceQuorumClient(
            0, cluster.system, cluster.endpoints(), b=cluster.b
        )
        try:
            for i in range(5):
                write = await client.write(("v", i))
                assert write.success
                read = await client.read()
                assert read.success
                assert read.value == ("v", i)
        finally:
            await client.close()

    asyncio.run(scenario())
