"""Core membership layer: epochs, rebinding, epoch-keyed strategy caches.

The tentpole invariants these pin down:

* a :class:`~repro.core.membership.Membership` is an append-only log with
  *absolute* epoch ids — severs and joins validate against the live set and
  the member order is deterministic (survivors keep their relative order,
  joiners append);
* :func:`~repro.core.membership.rebind_system` recomputes a system as a pure
  function of the epoch's membership: registry constructions resize their
  parameters and relabel onto the live members, explicit systems restrict to
  the surviving quorums, and a re-join that restores the original universe
  returns the *original object*;
* :class:`~repro.core.membership.ReboundQuorumSystem` is a pure relabelling —
  mask-level views and closed-form measures are the resized base's;
* :meth:`~repro.core.strategy.Strategy.restricted_to` is the incremental
  re-weighting primitive, and the strategy's incidence caches are keyed by
  ``(universe, epoch)`` so distinct epochs never share a cache slot.
"""

from __future__ import annotations

import pytest

from repro import ExplicitQuorumSystem, MGrid, majority
from repro.core import (
    Membership,
    MembershipEvent,
    ReboundQuorumSystem,
    Strategy,
    plan_events,
    rebind_system,
    severed_between,
)
from repro.core.universe import Universe
from repro.exceptions import InvalidQuorumSystemError


def _grid_membership(side: int = 5) -> tuple[MGrid, Membership]:
    """MGrid(side, 1) with the outer ring severed then re-admitted."""
    system = MGrid(side, 1)
    ring = side * side - (side - 1) ** 2
    events = plan_events(system.universe, [("sever", ring), ("join", ring)])
    return system, Membership(system.universe, events)


class TestMembershipLog:
    def test_epoch_zero_is_initial(self):
        membership = Membership(range(5))
        assert membership.num_epochs == 1
        assert membership.epoch(0).members == (0, 1, 2, 3, 4)
        assert membership.epoch(0).joined == frozenset()
        assert membership.epoch(0).severed == frozenset()

    def test_events_produce_consecutive_epochs(self):
        membership = Membership(
            range(5), [("sever", [3, 4]), ("join", ["x", "y"])]
        )
        assert membership.num_epochs == 3
        assert membership.epoch(1).members == (0, 1, 2)
        assert membership.epoch(1).severed == frozenset({3, 4})
        assert membership.epoch(2).members == (0, 1, 2, "x", "y")
        assert membership.epoch(2).joined == frozenset({"x", "y"})
        assert [epoch.index for epoch in membership] == [0, 1, 2]

    def test_survivors_keep_relative_order(self):
        membership = Membership(range(6), [("sever", [1, 4])])
        assert membership.epoch(1).members == (0, 2, 3, 5)

    def test_sever_of_non_member_rejected(self):
        with pytest.raises(InvalidQuorumSystemError):
            Membership(range(3), [("sever", [7])])

    def test_join_of_existing_member_rejected(self):
        with pytest.raises(InvalidQuorumSystemError):
            Membership(range(3), [("join", [2])])

    def test_emptying_epoch_rejected(self):
        with pytest.raises(InvalidQuorumSystemError):
            Membership(range(2), [("sever", [0, 1])])

    def test_epoch_ids_are_absolute(self):
        membership = Membership(range(4), [("sever", [3]), ("join", [3])])
        # The evicted epoch stays addressable after the re-join.
        assert membership.epoch(1).members == (0, 1, 2)
        with pytest.raises(InvalidQuorumSystemError):
            membership.epoch(3)

    def test_ever_members_and_severed_between(self):
        membership = Membership(
            range(4), [("sever", [2, 3]), ("join", ["x"]), ("sever", ["x"])]
        )
        assert membership.ever_members() == frozenset({0, 1, 2, 3, "x"})
        assert severed_between(membership, 0, 1) == frozenset({2, 3})
        assert severed_between(membership, 3, 3) == frozenset({"x"})
        assert severed_between(membership, 0, 99) == frozenset({2, 3, "x"})


class TestPlanEvents:
    def test_sever_evicts_tail_of_current_order(self):
        events = plan_events(Universe(range(5)), [("sever", 2)])
        assert events == (MembershipEvent("sever", (3, 4)),)

    def test_join_restores_severed_block_in_order(self):
        universe = Universe(range(6))
        events = plan_events(universe, [("sever", 3), ("join", 3)])
        assert events[1] == MembershipEvent("join", (3, 4, 5))
        membership = Membership(universe, events)
        # The round trip restores the universe exactly (order included).
        assert membership.epoch(2).universe == universe

    def test_join_mints_fresh_ids_when_pool_exhausted(self):
        events = plan_events(Universe(range(4)), [("sever", 1), ("join", 3)])
        assert events[1].servers == (3, "j2.0", "j2.1")

    def test_sever_to_empty_rejected(self):
        with pytest.raises(InvalidQuorumSystemError):
            plan_events(Universe(range(3)), [("sever", 3)])

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidQuorumSystemError):
            plan_events(Universe(range(3)), [("shrink", 1)])


class TestRebind:
    def test_same_universe_returns_same_object(self):
        system, membership = _grid_membership()
        assert membership.rebind(system, 0) is system
        # The re-join restores the initial configuration exactly.
        assert membership.rebind(system, 2) is system

    def test_registry_construction_resizes_and_relabels(self):
        system, membership = _grid_membership(5)
        rebound = membership.rebind(system, 1)
        assert isinstance(rebound, ReboundQuorumSystem)
        assert rebound.n == 16
        assert rebound.universe == membership.epoch(1).universe
        reference = MGrid(4, 1)
        assert rebound.num_quorums() == reference.num_quorums()
        assert rebound.min_intersection_size() == reference.min_intersection_size()
        assert rebound.masking_bound() == reference.masking_bound()
        # Quorums translate onto the surviving members only.
        member_set = membership.epoch(1).member_set()
        for quorum in rebound.iter_quorums():
            assert quorum <= member_set

    def test_rebind_is_cached_per_epoch(self):
        system, membership = _grid_membership()
        assert membership.rebind(system, 1) is membership.rebind(system, 1)

    def test_threshold_rebinds_to_epoch_size(self):
        system = majority(7)
        membership = Membership(
            system.universe, plan_events(system.universe, [("join", 4)])
        )
        rebound = membership.rebind(system, 1)
        assert rebound.n == 11
        assert rebound.universe == membership.epoch(1).universe

    def test_grid_rejects_non_square_epoch(self):
        system = MGrid(4, 1)
        membership = Membership(
            system.universe, plan_events(system.universe, [("sever", 2)])
        )
        with pytest.raises(InvalidQuorumSystemError):
            membership.rebind(system, 1)

    def test_explicit_system_restricts_to_surviving_quorums(self):
        system = ExplicitQuorumSystem(
            range(5),
            [{0, 1, 2}, {1, 2, 3}, {2, 3, 4}],
            name="simple",
        )
        membership = Membership(range(5), [("sever", [4])])
        rebound = rebind_system(system, membership.epoch(1))
        assert set(rebound.quorums()) == {
            frozenset({0, 1, 2}),
            frozenset({1, 2, 3}),
        }
        assert rebound.universe == membership.epoch(1).universe

    def test_explicit_system_with_no_survivor_rejected(self):
        system = ExplicitQuorumSystem(range(3), [{0, 1, 2}], name="all")
        membership = Membership(range(3), [("sever", [2])])
        with pytest.raises(InvalidQuorumSystemError):
            rebind_system(system, membership.epoch(1))


class TestStrategyEpochs:
    def test_restricted_to_keeps_surviving_quorums(self):
        strategy = Strategy(
            {
                frozenset({0, 1}): 0.5,
                frozenset({1, 2}): 0.25,
                frozenset({2, 3}): 0.25,
            }
        )
        restricted = strategy.restricted_to({0, 1, 2})
        assert restricted is not None
        assert set(restricted.support) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
        }
        # Weights renormalise over the survivors.
        assert restricted.probability(frozenset({0, 1})) == pytest.approx(2 / 3)
        assert restricted.probability(frozenset({1, 2})) == pytest.approx(1 / 3)

    def test_restricted_to_empty_support_returns_none(self):
        strategy = Strategy({frozenset({0, 1}): 1.0})
        assert strategy.restricted_to({2, 3}) is None

    def test_caches_are_keyed_by_epoch(self):
        universe = Universe(range(4))
        strategy = Strategy(
            {frozenset({0, 1}): 0.5, frozenset({2, 3}): 0.5}
        )
        default = strategy.support_masks(universe)
        tagged = strategy.support_masks(universe, epoch=1)
        assert default == tagged  # same universe, same masks...
        engine_a = strategy.support_engine(universe)
        engine_b = strategy.support_engine(universe, epoch=1)
        engine_c = strategy.support_engine(universe, epoch=1)
        assert engine_b is engine_c  # ...but per-epoch cache slots
        assert engine_a is not engine_b
