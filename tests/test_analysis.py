"""Unit tests for the evaluation-level analysis: Section 8 comparison, Table 2, trade-offs."""

from __future__ import annotations

import pytest

from repro import ConstructionError, MGrid, MPath, RecursiveThreshold, masking_threshold
from repro.analysis import (
    TABLE2_SYSTEMS,
    availability_trend,
    profile_system,
    section8_comparison,
    table2,
    tradeoff_point,
    verify_tradeoff,
)


class TestProfileSystem:
    def test_profile_of_rt_is_exact(self, rng):
        system = RecursiveThreshold(4, 3, 3)
        profile = profile_system(system, 0.1, rng=rng)
        assert profile.crash_probability_kind == "exact"
        assert profile.n == 64
        assert profile.f == system.min_transversal_size() - 1
        assert profile.load == pytest.approx(system.load())

    def test_profile_of_mgrid_uses_lower_bound(self, rng):
        profile = profile_system(MGrid(8, 3), 0.1, rng=rng)
        assert profile.crash_probability_kind == "lower-bound"

    def test_profile_of_mpath_uses_analytic_bound_for_small_p(self, rng):
        profile = profile_system(MPath(8, 3), 0.1, rng=rng)
        assert profile.crash_probability_kind == "upper-bound"

    def test_profile_respects_explicit_b(self, rng):
        profile = profile_system(masking_threshold(17, 4), 0.1, b=4, rng=rng)
        assert profile.b == 4


class TestSection8:
    def test_comparison_at_small_scale(self, rng):
        profiles = section8_comparison(n=256, p=0.125, rng=rng)
        names = [profile.name for profile in profiles]
        assert len(profiles) == 4
        assert any("M-Grid" in name for name in names)
        assert any("boostFPP" in name for name in names)
        assert any("M-Path" in name for name in names)
        assert any("RT(4,3)" in name for name in names)

    def test_loads_are_comparable_across_systems(self, rng):
        # The whole point of the exercise: every system is configured to a
        # load of roughly the same magnitude.
        profiles = section8_comparison(n=256, p=0.125, rng=rng)
        loads = [profile.load for profile in profiles]
        assert max(loads) <= 3.0 * min(loads)

    def test_availability_ordering_matches_paper(self, rng):
        # At p = 1/8 the paper's ordering is: M-Grid worst, then boostFPP,
        # then M-Path and RT far better.
        profiles = {p.name.split("(")[0]: p for p in section8_comparison(n=1024, p=0.125, rng=rng)}
        mgrid = profiles["M-Grid"].crash_probability
        boost = profiles["boostFPP"].crash_probability
        rt = profiles["RT"].crash_probability
        assert mgrid > 0.5
        assert boost < mgrid
        assert rt < 0.01

    def test_non_square_n_rejected(self, rng):
        with pytest.raises(ConstructionError):
            section8_comparison(n=1000, p=0.1, rng=rng)

    def test_baselines_can_be_included(self, rng):
        profiles = section8_comparison(n=256, p=0.125, rng=rng, include_baselines=True)
        assert len(profiles) == 6


class TestTable2:
    def test_all_six_systems_present(self, rng):
        rows = table2(n=256, p=0.125, rng=rng)
        assert [row.system for row in rows] == list(TABLE2_SYSTEMS)

    def test_masking_and_resilience_columns(self, rng):
        rows = {row.system: row for row in table2(n=256, p=0.125, rng=rng)}
        # Threshold masks the most (b < n/4) and has the largest resilience.
        assert rows["Threshold"].max_b == 63
        assert rows["Threshold"].resilience >= rows["M-Grid"].resilience
        # The grid-shaped systems mask O(sqrt(n)).
        assert rows["M-Grid"].max_b <= 16
        assert rows["M-Path"].max_b <= 16
        # RT's masking at n = 256 (h = 4) is (2^4 - 1)/2 = 7.
        assert rows["RT(4,3)"].max_b == 7

    def test_load_column_marks_optimal_systems(self, rng):
        rows = {row.system: row for row in table2(n=256, p=0.125, rng=rng)}
        # Threshold's load is at least 1/2 while the load-optimal systems sit
        # within a small factor of the lower bound.
        assert rows["Threshold"].load >= 0.5
        for name in ("M-Grid", "boostFPP", "M-Path"):
            assert rows[name].load_optimal
            assert rows[name].load <= 2.5 * rows[name].load_lower_bound

    def test_availability_column_shape(self, rng):
        rows = {row.system: row for row in table2(n=256, p=0.125, rng=rng)}
        # Threshold and RT are (near) optimally available; Grid and M-Grid poor.
        assert rows["Threshold"].crash_probability < 1e-6
        assert rows["RT(4,3)"].crash_probability < 1e-3
        assert rows["M-Grid"].crash_probability > 0.3
        assert rows["Grid"].crash_probability > 0.3

    def test_non_square_n_rejected(self, rng):
        with pytest.raises(ConstructionError):
            table2(n=200, p=0.1, rng=rng)


class TestAvailabilityTrends:
    def test_grid_like_systems_degrade(self, rng):
        trend = availability_trend("M-Grid", [25, 81, 169], 0.2, rng=rng)
        assert trend[-1] > trend[0]

    def test_threshold_and_rt_improve(self, rng):
        threshold_trend = availability_trend("Threshold", [25, 81, 169], 0.2, rng=rng)
        assert threshold_trend[-1] < threshold_trend[0]
        rt_trend = availability_trend("RT(4,3)", [16, 64, 256], 0.15, rng=rng)
        assert rt_trend[-1] < rt_trend[0]

    def test_unknown_system_rejected(self, rng):
        with pytest.raises(ConstructionError):
            availability_trend("Paxos", [16], 0.1, rng=rng)


class TestTradeoff:
    def test_every_construction_respects_f_le_nL(self, rng):
        systems = [
            masking_threshold(16, 3),
            MGrid(7, 3),
            RecursiveThreshold(4, 3, 3),
            MPath(8, 3),
        ]
        for system in systems:
            assert verify_tradeoff(system)
            point = tradeoff_point(system)
            assert point.slack >= -1e-9
            assert point.resilience == system.min_transversal_size() - 1

    def test_tradeoff_point_fields(self):
        point = tradeoff_point(masking_threshold(16, 3))
        assert point.n == 16
        assert point.resilience_bound == pytest.approx(16 * point.load)


class TestEmpiricalComparison:
    def test_load_measurement_matches_the_lp(self, rng):
        from repro.analysis import empirical_load_comparison

        comparison = empirical_load_comparison(MGrid(4, 1), b=1, rng=rng)
        assert comparison.optimality_gap == pytest.approx(0.0, abs=1e-9)
        assert comparison.sampling_gap < 0.05
        assert comparison.empirical_load == pytest.approx(
            comparison.analytic_load, abs=0.05
        )

    def test_uniform_strategy_reports_its_own_induced_load(self, rng):
        from repro import ExplicitQuorumSystem
        from repro.analysis import empirical_load_comparison

        triangle = ExplicitQuorumSystem(
            range(3), [{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}], name="triangle"
        )
        comparison = empirical_load_comparison(
            triangle, b=0, rng=rng, strategy="uniform"
        )
        assert comparison.analytic_load == pytest.approx(2 / 3)
        assert comparison.strategy_load == pytest.approx(0.75)
        assert comparison.optimality_gap == pytest.approx(0.75 - 2 / 3)

    def test_availability_measurement_matches_exact_fp(self, rng):
        from repro import ThresholdQuorumSystem, exact_failure_probability
        from repro.analysis import empirical_availability_comparison

        system = ThresholdQuorumSystem(5, 4)
        comparison = empirical_availability_comparison(
            system, 0.2, b=0, trials=250, operations_per_trial=8, rng=rng
        )
        assert comparison.analytic_failure_probability == pytest.approx(
            exact_failure_probability(system, 0.2).value
        )
        assert comparison.gap < 0.06
