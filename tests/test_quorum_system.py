"""Unit tests for the quorum-system abstraction (Definitions 3.1-3.5)."""

from __future__ import annotations

import pytest

from repro import (
    ComputationError,
    ExplicitQuorumSystem,
    InvalidQuorumSystemError,
    MPath,
    Universe,
)


class TestExplicitConstruction:
    def test_accepts_iterables_and_normalises(self):
        system = ExplicitQuorumSystem(range(3), [[0, 1], (1, 2)])
        assert set(system.quorums()) == {frozenset({0, 1}), frozenset({1, 2})}

    def test_deduplicates_quorums(self):
        system = ExplicitQuorumSystem(range(3), [{0, 1}, {1, 0}, {1, 2}])
        assert system.num_quorums() == 2

    def test_rejects_non_intersecting_quorums(self):
        with pytest.raises(InvalidQuorumSystemError):
            ExplicitQuorumSystem(range(4), [{0, 1}, {2, 3}])

    def test_rejects_empty_quorum(self):
        with pytest.raises(InvalidQuorumSystemError):
            ExplicitQuorumSystem(range(3), [set(), {0, 1}])

    def test_rejects_elements_outside_universe(self):
        with pytest.raises(InvalidQuorumSystemError):
            ExplicitQuorumSystem(range(3), [{0, 7}])

    def test_rejects_empty_quorum_list(self):
        with pytest.raises(InvalidQuorumSystemError):
            ExplicitQuorumSystem(range(3), [])

    def test_validate_can_be_deferred(self):
        system = ExplicitQuorumSystem(range(4), [{0, 1}, {2, 3}], validate=False)
        with pytest.raises(InvalidQuorumSystemError):
            system.validate()

    def test_accepts_universe_object(self):
        universe = Universe(["a", "b", "c"])
        system = ExplicitQuorumSystem(universe, [{"a", "b"}, {"b", "c"}])
        assert system.universe is universe


class TestMeasures:
    def test_basic_parameters(self, simple_system):
        assert simple_system.n == 5
        assert simple_system.min_quorum_size() == 3
        assert simple_system.max_quorum_size() == 3
        assert simple_system.min_intersection_size() == 1
        # Element 2 alone hits every quorum.
        assert simple_system.min_transversal_size() == 1
        assert simple_system.resilience() == 0

    def test_degrees(self, simple_system):
        degrees = simple_system.degrees()
        assert degrees[2] == 3
        assert degrees[0] == 1
        assert simple_system.degree(2) == 3

    def test_fairness_of_unfair_system(self, simple_system):
        assert simple_system.fairness() is None
        assert not simple_system.is_fair()

    def test_fairness_of_fair_system(self, majority_5):
        size, degree = majority_5.to_explicit().fairness()
        assert size == 3
        assert degree == 6  # C(4, 2)

    def test_singleton_system(self, singleton_system):
        assert singleton_system.min_quorum_size() == 1
        assert singleton_system.min_intersection_size() == 1
        assert singleton_system.min_transversal_size() == 1

    def test_incidence_matrix_shape_and_content(self, simple_system):
        matrix = simple_system.element_index_matrix()
        assert matrix.shape == (3, 5)
        assert matrix.sum() == 9  # three quorums of size three
        # Column of element 2 is all True.
        column = matrix[:, simple_system.universe.index_of(2)]
        assert column.all()


class TestMasking:
    def test_masking_bound_matches_corollary_3_7(self, threshold_9_7):
        # 7-of-9: IS = 5, MT = 3 -> b = min(2, 2) = 2.
        assert threshold_9_7.masking_bound() == 2

    def test_is_b_masking_accepts_up_to_bound(self, threshold_9_7):
        assert threshold_9_7.is_b_masking(0)
        assert threshold_9_7.is_b_masking(2)
        assert not threshold_9_7.is_b_masking(3)

    def test_negative_b_rejected(self, threshold_9_7):
        with pytest.raises(InvalidQuorumSystemError):
            threshold_9_7.is_b_masking(-1)

    def test_regular_system_masks_nothing(self, simple_system):
        assert simple_system.masking_bound() == 0


class TestEnumerationGuards:
    def test_quorum_limit_enforced(self, threshold_9_7):
        with pytest.raises(ComputationError):
            threshold_9_7.quorums(limit=5)

    def test_non_enumerable_system_refuses_quorums(self):
        mpath = MPath(5, 2)
        with pytest.raises(ComputationError):
            mpath.quorums()

    def test_quorums_are_cached(self, simple_system):
        assert simple_system.quorums() is simple_system.quorums()


class TestSamplingAndConversion:
    def test_sample_quorum_returns_a_quorum(self, simple_system, rng):
        quorum = simple_system.sample_quorum(rng)
        assert quorum in set(simple_system.quorums())

    def test_to_explicit_roundtrip(self, threshold_9_7):
        explicit = threshold_9_7.to_explicit()
        assert explicit.num_quorums() == threshold_9_7.num_quorums()
        assert explicit.min_intersection_size() == threshold_9_7.min_intersection_size()

    def test_equality_and_hash_of_explicit_systems(self):
        first = ExplicitQuorumSystem(range(3), [{0, 1}, {1, 2}])
        second = ExplicitQuorumSystem(range(3), [{1, 2}, {0, 1}])
        assert first == second
        assert len({first, second}) == 1

    def test_restricted_to_alive(self, simple_system):
        survivors = simple_system.restricted_to_alive({0})
        assert survivors is not None
        assert frozenset({0, 1, 2}) not in set(survivors.quorums())
        assert simple_system.restricted_to_alive({2}) is None

    def test_repr_mentions_name(self, simple_system):
        assert "simple" in repr(simple_system)
