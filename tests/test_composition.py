"""Unit tests for quorum composition (Definition 4.6, Theorem 4.7)."""

from __future__ import annotations

import pytest

from repro import (
    ThresholdQuorumSystem,
    best_known_load,
    compose,
    exact_load,
    failure_probability,
    majority,
    self_compose,
)


@pytest.fixture
def maj3():
    return majority(3)


@pytest.fixture
def thresh_4_3():
    return ThresholdQuorumSystem(4, 3)


class TestStructure:
    def test_universe_size_multiplies(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        assert composed.n == 12

    def test_elements_are_tagged_pairs(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        assert (0, 0) in composed.universe
        assert (2, 3) in composed.universe

    def test_quorum_count(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        # Outer quorums have size 2; each of the 3 outer quorums expands to
        # 4^2 = 16 combinations of inner quorums.
        assert composed.num_quorums() == 3 * 16
        assert composed.num_quorums() == len(set(composed.quorums()))

    def test_quorums_are_valid(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        composed.to_explicit().validate()

    def test_name_defaults_to_composition(self, maj3, thresh_4_3):
        assert "∘" in compose(maj3, thresh_4_3).name


class TestTheorem47Parameters:
    def test_combinatorial_parameters_match_enumeration(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        explicit = composed.to_explicit()
        assert composed.min_quorum_size() == explicit.min_quorum_size() == 2 * 3
        assert composed.min_intersection_size() == explicit.min_intersection_size() == 1 * 2
        assert composed.min_transversal_size() == explicit.min_transversal_size() == 2 * 2

    def test_fairness_multiplies(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        size, degree = composed.fairness()
        explicit_size, explicit_degree = composed.to_explicit().fairness()
        assert (size, degree) == (explicit_size, explicit_degree)

    def test_composition_with_unfair_component_is_not_fair(self, simple_system, maj3):
        composed = compose(simple_system, maj3)
        assert composed.fairness() is None


class TestTheorem47LoadAndAvailability:
    def test_load_multiplies(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        expected = exact_load(maj3).load * exact_load(thresh_4_3).load
        assert composed.load() == pytest.approx(expected)
        # And the exact LP on the composed system agrees.
        assert exact_load(composed.to_explicit()).load == pytest.approx(expected, abs=1e-6)

    def test_crash_probability_composes(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        p = 0.2
        inner_fp = thresh_4_3.crash_probability(p)
        expected = maj3.crash_probability(inner_fp)
        assert composed.crash_probability(p) == pytest.approx(expected)
        # Cross-check against exhaustive enumeration over the 12 servers.
        exhaustive = failure_probability(composed.to_explicit(), p, method="exact").value
        assert exhaustive == pytest.approx(expected, abs=1e-9)

    def test_sampled_quorums_are_quorums(self, maj3, thresh_4_3, rng):
        composed = compose(maj3, thresh_4_3)
        quorum_set = set(composed.quorums())
        for _ in range(10):
            assert composed.sample_quorum(rng) in quorum_set


class TestSelfComposition:
    def test_depth_one_is_identity(self, thresh_4_3):
        assert self_compose(thresh_4_3, 1) is thresh_4_3

    def test_depth_two_matches_rt(self, thresh_4_3, rt_4_3_depth2):
        composed = self_compose(thresh_4_3, 2)
        assert composed.n == rt_4_3_depth2.n
        assert composed.min_quorum_size() == rt_4_3_depth2.min_quorum_size()
        assert composed.min_intersection_size() == rt_4_3_depth2.min_intersection_size()
        assert composed.min_transversal_size() == rt_4_3_depth2.min_transversal_size()
        assert composed.num_quorums() == rt_4_3_depth2.num_quorums()

    def test_depth_two_crash_probability_matches_rt_recurrence(self, thresh_4_3, rt_4_3_depth2):
        composed = self_compose(thresh_4_3, 2)
        for p in (0.1, 0.25, 0.5):
            assert composed.crash_probability(p) == pytest.approx(
                rt_4_3_depth2.crash_probability(p), abs=1e-12
            )

    def test_invalid_depth_rejected(self, thresh_4_3):
        with pytest.raises(ValueError):
            self_compose(thresh_4_3, 0)

    def test_naming_override(self, thresh_4_3):
        composed = self_compose(thresh_4_3, 2, name="RT-ish")
        assert composed.name == "RT-ish"


class TestBestKnownLoadIntegration:
    def test_best_known_load_uses_composition_formula(self, maj3, thresh_4_3):
        composed = compose(maj3, thresh_4_3)
        result = best_known_load(composed)
        assert result.method == "analytic"
        assert result.load == pytest.approx(composed.load())
