"""Unit tests for the percolation substrate (lattice, crossings, critical point)."""

from __future__ import annotations

import pytest

from repro import ComputationError, ConstructionError
from repro.percolation import (
    TriangularGrid,
    count_disjoint_crossings,
    estimate_critical_probability,
    estimate_crossing_probability,
    fixed_point_of_reliability,
    has_open_crossing,
    sample_open_vertices,
)


class TestTriangularGrid:
    def test_vertex_count(self):
        assert TriangularGrid(5).num_vertices == 25
        assert len(list(TriangularGrid(4).vertices())) == 16

    def test_side_too_small_rejected(self):
        with pytest.raises(ConstructionError):
            TriangularGrid(1)

    def test_neighbour_structure_matches_paper_triangulation(self):
        grid = TriangularGrid(4)
        # Interior vertex has six neighbours: (i, j±1), (i±1, j), (i-1, j+1), (i+1, j-1).
        assert set(grid.neighbours((2, 2))) == {
            (2, 3), (2, 1), (3, 2), (1, 2), (1, 3), (3, 1),
        }
        # Corner vertices.
        assert set(grid.neighbours((1, 1))) == {(1, 2), (2, 1)}
        assert set(grid.neighbours((4, 4))) == {(4, 3), (3, 4)}

    def test_adjacency_is_symmetric(self):
        grid = TriangularGrid(4)
        for vertex in grid.vertices():
            for neighbour in grid.neighbours(vertex):
                assert vertex in grid.neighbours(neighbour)

    def test_boundaries(self):
        grid = TriangularGrid(3)
        assert grid.left_side() == [(1, 1), (1, 2), (1, 3)]
        assert grid.right_side() == [(3, 1), (3, 2), (3, 3)]
        assert grid.bottom_side() == [(1, 1), (2, 1), (3, 1)]
        assert grid.top_side() == [(1, 3), (2, 3), (3, 3)]

    def test_rows_and_columns_are_paths(self):
        grid = TriangularGrid(5)
        assert grid.is_lr_path(grid.row(2))
        assert grid.is_tb_path(grid.column(3))
        assert not grid.is_lr_path(grid.column(3))

    def test_invalid_row_or_column_rejected(self):
        grid = TriangularGrid(3)
        with pytest.raises(ConstructionError):
            grid.row(0)
        with pytest.raises(ConstructionError):
            grid.column(4)

    def test_is_path_rejects_disconnected_or_repeated(self):
        grid = TriangularGrid(4)
        assert not grid._is_path([(1, 1), (3, 3)])
        assert not grid._is_path([(1, 1), (2, 1), (1, 1)])
        assert not grid._is_path([])


class TestCrossings:
    def test_fully_open_grid_crosses(self):
        grid = TriangularGrid(4)
        vertices = set(grid.vertices())
        assert has_open_crossing(grid, vertices, direction="lr")
        assert has_open_crossing(grid, vertices, direction="tb")
        assert count_disjoint_crossings(grid, vertices, direction="lr") == 4

    def test_fully_closed_grid_does_not_cross(self):
        grid = TriangularGrid(4)
        assert not has_open_crossing(grid, set(), direction="lr")
        assert count_disjoint_crossings(grid, set(), direction="tb") == 0

    def test_single_open_row_gives_one_crossing(self):
        grid = TriangularGrid(5)
        open_vertices = set(grid.row(3))
        assert has_open_crossing(grid, open_vertices, direction="lr")
        assert not has_open_crossing(grid, open_vertices, direction="tb")
        assert count_disjoint_crossings(grid, open_vertices, direction="lr") == 1

    def test_closed_column_blocks_lr_crossings(self):
        grid = TriangularGrid(5)
        open_vertices = {v for v in grid.vertices() if v[0] != 3}
        assert not has_open_crossing(grid, open_vertices, direction="lr")
        # TB crossings survive on either side of the closed column.
        assert has_open_crossing(grid, open_vertices, direction="tb")

    def test_diagonal_edge_enables_crossing(self):
        # A staircase using the (i+1, j-1) diagonal: (1,2) -> (2,1) is an edge
        # of the triangulation, so this two-vertex-per-column path crosses.
        grid = TriangularGrid(3)
        open_vertices = {(1, 2), (2, 1), (3, 1)}
        assert has_open_crossing(grid, open_vertices, direction="lr")

    def test_unknown_direction_rejected(self):
        grid = TriangularGrid(3)
        with pytest.raises(ComputationError):
            has_open_crossing(grid, set(grid.vertices()), direction="diagonal")
        with pytest.raises(ComputationError):
            count_disjoint_crossings(grid, set(grid.vertices()), direction="diagonal")


class TestSamplingAndEstimation:
    def test_sample_extremes(self, rng):
        grid = TriangularGrid(4)
        assert sample_open_vertices(grid, 0.0, rng) == set(grid.vertices())
        assert sample_open_vertices(grid, 1.0, rng) == set()

    def test_sample_rejects_invalid_probability(self, rng):
        with pytest.raises(ComputationError):
            sample_open_vertices(TriangularGrid(3), 1.5, rng)

    def test_crossing_probability_monotone_in_p(self, rng):
        grid = TriangularGrid(7)
        low = estimate_crossing_probability(grid, 0.1, trials=120, rng=rng).probability
        high = estimate_crossing_probability(grid, 0.7, trials=120, rng=rng).probability
        assert low > high

    def test_multi_crossing_estimate(self, rng):
        grid = TriangularGrid(6)
        single = estimate_crossing_probability(
            grid, 0.2, trials=80, min_disjoint=1, rng=rng
        ).probability
        triple = estimate_crossing_probability(
            grid, 0.2, trials=80, min_disjoint=3, rng=rng
        ).probability
        assert triple <= single

    def test_invalid_trials_rejected(self, rng):
        with pytest.raises(ComputationError):
            estimate_crossing_probability(TriangularGrid(4), 0.2, trials=0, rng=rng)


class TestCriticalPoint:
    def test_estimate_lands_near_one_half(self, rng):
        estimate = estimate_critical_probability(
            side=10, trials_per_point=80, iterations=7, rng=rng
        )
        assert 0.3 < estimate.critical_probability < 0.7

    def test_rt_block_fixed_point_matches_paper(self):
        # g(p) = 6p^2 - 8p^3 + 3p^4 has its non-trivial fixed point at 0.2324.
        def g(p):
            return 6 * p ** 2 - 8 * p ** 3 + 3 * p ** 4

        assert fixed_point_of_reliability(g) == pytest.approx(0.2324, abs=5e-4)

    def test_majority_block_fixed_point_is_one_half(self):
        from scipy import stats

        def g(p):
            return float(stats.binom.sf(1, 3, p))  # 2-of-3 block

        assert fixed_point_of_reliability(g) == pytest.approx(0.5, abs=1e-6)

    def test_non_s_shaped_function_rejected(self):
        with pytest.raises(ComputationError):
            fixed_point_of_reliability(lambda p: p / 2 + 0.4)
