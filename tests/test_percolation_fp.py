"""Correlated-failure scenarios vs the closed-form ``Fp`` and each other.

The dormant percolation lattice becomes a fault model here: each phase of a
:func:`~repro.simulation.scenarios.percolation_scenario` is one independent
site-percolation draw (closed vertex = crashed server), so the per-phase
quorum-survival indicator is exactly a Definition 3.10 trial and the
observed failure rate must match :func:`~repro.core.analytic.
analytic_failure_probability` within a binomial envelope.  The
:func:`~repro.simulation.scenarios.blast_radius_scenario` variant crashes a
lattice neighbourhood per phase — genuinely correlated (rack/zone) faults
that the i.i.d. closed form does *not* describe; the test asserts the
spatial structure instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGrid, RegularGrid, majority
from repro.analysis import percolation_conformance
from repro.exceptions import SimulationError
from repro.simulation import (
    blast_radius_scenario,
    lattice_embedding,
    percolation_scenario,
)

SYSTEMS = [
    pytest.param(lambda: RegularGrid(4), "grid-4", id="grid"),
    pytest.param(lambda: MGrid(5, 1), "mgrid-5", id="mgrid"),
    pytest.param(lambda: majority(9), "majority-9", id="majority"),
]


# ----------------------------------------------------------------------
# Site percolation agrees with the analytic Fp.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make, label", SYSTEMS)
@pytest.mark.parametrize("p", [0.15, 0.3])
def test_percolation_failure_rate_matches_fp(make, label, p):
    system = make()
    result, report = percolation_conformance(
        system, p=p, phases=160, operations_per_phase=3, seed=9
    )
    report.require()
    assert result.operations == 480


def test_more_phases_tighten_the_envelope():
    system = MGrid(5, 1)
    _, loose = percolation_conformance(system, p=0.2, phases=50, seed=1)
    _, tight = percolation_conformance(system, p=0.2, phases=400, seed=1)
    assert (
        tight.check("failure-rate-upper").slack
        < loose.check("failure-rate-upper").slack
    )
    tight.require()


# ----------------------------------------------------------------------
# The lattice embedding and scenario structure.
# ----------------------------------------------------------------------
def test_lattice_embedding_pairs_grid_with_universe():
    system = MGrid(5, 1)
    grid, placement = lattice_embedding(system.universe)
    assert len(placement) == system.universe.size
    assert set(placement.values()) == set(system.universe.elements)
    assert sorted(placement) == sorted(grid.vertices())


def test_lattice_embedding_rejects_non_square_universes():
    system = RegularGrid(4)  # n = 16 is square; build a non-square one
    from repro.core.universe import Universe

    with pytest.raises(SimulationError):
        lattice_embedding(Universe(range(15)))
    with pytest.raises(SimulationError):
        lattice_embedding(Universe(range(1)))  # side 1 < 2


def test_percolation_scenario_draws_fresh_faults_per_phase():
    system = MGrid(5, 1)
    scenario = percolation_scenario(
        system.universe, p_closed=0.3, rng=np.random.default_rng(2), phases=12
    )
    assert len(scenario.phases) == 12
    crash_sets = [phase.crashed for phase in scenario.phases]
    assert len(set(crash_sets)) > 1  # independent draws, not one frozen set


def test_blast_radius_crashes_a_connected_neighbourhood():
    system = MGrid(5, 1)
    grid, placement = lattice_embedding(system.universe)
    by_server = {server: vertex for vertex, server in placement.items()}
    scenario = blast_radius_scenario(
        system.universe, rng=np.random.default_rng(4), radius=1, phases=6
    )
    for phase in scenario.phases:
        vertices = {by_server[server] for server in phase.crashed}
        assert 2 <= len(vertices) <= 7  # a radius-1 ball on the 6-neighbour lattice
        # Spatially correlated: every crashed vertex is within one hop of
        # some other crashed vertex (connectivity of the ball).
        for vertex in vertices:
            assert set(grid.neighbours(vertex)) & vertices
