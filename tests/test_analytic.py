"""Cross-validation of the closed-form engine (repro.core.analytic).

Every closed form must agree with the LP/enumeration engine to 1e-9 on a
small-n matrix covering all construction families — this is the contract
that lets the implicit layer report *exact* measures at n = 10^4 where no
enumeration can check them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BoostedFPP,
    CrumblingWall,
    ExplicitQuorumSystem,
    FiniteProjectivePlane,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    RegularGrid,
    ThresholdQuorumSystem,
    analytic_failure_probability,
    analytic_load,
    compose,
    exact_failure_probability,
    exact_load,
    majority,
    masking_threshold,
    monte_carlo_failure_probability,
)
from repro.core.analytic import (
    crumbling_wall_failure_probability,
    rowcol_survival_probability,
)
from repro.exceptions import ComputationError

TOLERANCE = 1e-9

#: Crash probabilities the agreement matrix sweeps, including both edges.
PROBABILITIES = (0.0, 0.05, 0.1, 0.25, 0.5, 0.8, 1.0)


def _exact_fp_systems():
    """Small-n instances of every family the exact engine can enumerate."""
    return [
        ThresholdQuorumSystem(7, 5),
        masking_threshold(13, 3),
        majority(9),
        RegularGrid(3),
        RegularGrid(4),
        MaskingGrid(4, 1),
        MGrid(4, 1),
        RecursiveThreshold(4, 3, 2),
        RecursiveThreshold(3, 2, 2),
        CrumblingWall([3, 2, 1]),
        CrumblingWall([2, 3]),
        CrumblingWall([1, 2, 3]),
        CrumblingWall([4, 3, 2, 2]),
        compose(majority(3), majority(3)),
        compose(majority(3), ThresholdQuorumSystem(4, 3)),
        FiniteProjectivePlane(2),
    ]


class TestFailureProbabilityAgreement:
    @pytest.mark.parametrize(
        "system", _exact_fp_systems(), ids=lambda system: system.name
    )
    @pytest.mark.parametrize("p", PROBABILITIES)
    def test_matches_exact_enumeration(self, system, p):
        analytic = analytic_failure_probability(system, p)
        exact = exact_failure_probability(system, p)
        assert analytic.value == pytest.approx(exact.value, abs=TOLERANCE)

    @pytest.mark.parametrize("p", PROBABILITIES)
    @pytest.mark.parametrize("side,b", [(3, 0), (4, 1)])
    def test_mpath_straight_lines_match_subsystem_enumeration(self, side, b, p):
        mpath = MPath(side, b)
        analytic = analytic_failure_probability(mpath, p)
        exact = exact_failure_probability(mpath.straight_line_subsystem(), p)
        assert analytic.method == "analytic-straight-lines"
        assert analytic.value == pytest.approx(exact.value, abs=TOLERANCE)

    def test_mpath_straight_lines_upper_bound_full_family(self):
        # Bent paths only add quorums, so the straight-line Fp must bound the
        # percolation estimate of the full family from above.
        mpath = MPath(5, 1)
        p = 0.2
        analytic = analytic_failure_probability(mpath, p).value
        monte = mpath.crash_probability(p, trials=400, rng=np.random.default_rng(3))
        assert analytic >= monte - 0.1  # 0.1 >> the MC standard error

    def test_boost_fpp_exact_via_modular_decomposition(self):
        # n = 35: enumeration over 2^35 crash sets is out, but the modular
        # decomposition (exact inner binomial, exact outer enumeration over
        # the 7-point plane) is exact — check it against Monte-Carlo.
        system = BoostedFPP(2, 1)
        p = 0.15
        analytic = analytic_failure_probability(system, p)
        assert analytic.method == "analytic"
        monte = monte_carlo_failure_probability(
            system, p, trials=40_000, rng=np.random.default_rng(7)
        )
        assert analytic.value == pytest.approx(monte.value, abs=5 * monte.std_error + 1e-4)
        # ... and it must undercut the Proposition 6.3-style line-death bound.
        assert analytic.value <= system.crash_probability(p) + TOLERANCE

    def test_composition_decomposition_is_exact_not_a_bound(self):
        composed = compose(majority(3), majority(5))  # n = 15
        for p in (0.1, 0.3, 0.6):
            analytic = analytic_failure_probability(composed, p)
            exact = exact_failure_probability(composed, p)
            assert analytic.method == "analytic"
            assert analytic.value == pytest.approx(exact.value, abs=TOLERANCE)

    def test_generic_fallback_enumeration(self):
        explicit = ExplicitQuorumSystem(range(5), [{0, 1, 2}, {1, 2, 3}, {2, 3, 4}])
        result = analytic_failure_probability(explicit, 0.2)
        assert result.method == "enumeration"
        assert result.value == pytest.approx(
            exact_failure_probability(explicit, 0.2).value, abs=TOLERANCE
        )

    def test_rejects_invalid_probability(self):
        with pytest.raises(ComputationError):
            analytic_failure_probability(RegularGrid(3), 1.5)
        with pytest.raises(ComputationError):
            rowcol_survival_probability(4, -0.1, 1, 1)
        with pytest.raises(ComputationError):
            crumbling_wall_failure_probability([2, 1], 2.0)

    def test_rowcol_requirements_beyond_side_are_impossible(self):
        assert rowcol_survival_probability(4, 0.0, 5, 1) == 0.0

    def test_values_are_probabilities_at_extreme_p(self):
        # The DP and wall products must clamp float drift at the edges.
        for p in (1e-12, 1.0 - 1e-12):
            for system in (MGrid(6, 1), RegularGrid(5), CrumblingWall([3, 2, 1])):
                value = analytic_failure_probability(system, p).value
                assert 0.0 <= value <= 1.0


def _load_systems():
    return [
        ThresholdQuorumSystem(7, 5),
        masking_threshold(13, 3),
        RegularGrid(3),
        RegularGrid(4),
        MaskingGrid(4, 1),
        MGrid(4, 1),
        MGrid(5, 2),
        RecursiveThreshold(4, 3, 2),
        BoostedFPP(2, 1),
        FiniteProjectivePlane(2),
    ]


class TestLoadAgreement:
    @pytest.mark.parametrize("system", _load_systems(), ids=lambda system: system.name)
    def test_matches_exact_lp(self, system):
        analytic = analytic_load(system)
        exact = exact_load(system)
        assert analytic.method == "analytic"
        assert analytic.load == pytest.approx(exact.load, abs=TOLERANCE)

    @pytest.mark.parametrize("side,b", [(3, 1), (4, 1)])
    def test_mpath_load_matches_straight_line_lp(self, side, b):
        mpath = MPath(side, b)
        analytic = analytic_load(mpath)
        exact = exact_load(mpath.straight_line_subsystem())
        assert analytic.load == pytest.approx(exact.load, abs=TOLERANCE)

    def test_fair_explicit_system_uses_proposition_3_9(self):
        cycle = ExplicitQuorumSystem(
            range(4), [{0, 1}, {1, 2}, {2, 3}, {3, 0}], validate=False
        )
        result = analytic_load(cycle)
        assert result.method == "fair"
        assert result.load == pytest.approx(0.5, abs=TOLERANCE)

    def test_unfair_system_without_closed_form_raises(self):
        lopsided = ExplicitQuorumSystem(range(4), [{0, 1, 2}, {0, 3}])
        with pytest.raises(ComputationError, match="no closed-form load"):
            analytic_load(lopsided)
