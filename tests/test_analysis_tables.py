"""Pins for the reproduced paper tables (repro.analysis.tables).

The analytic refactor routes measures through closed forms; these pins
freeze ``table2`` and ``availability_trend`` on a small matrix so a future
change to any measure path cannot silently alter the reproduced Table 2.
Closed-form columns are pinned to 1e-12; Monte-Carlo ``Fp`` columns are
pinned to their seeded values with a loose tolerance (the draw stream is
deterministic, but the tolerance keeps the pin robust to benign changes in
trial batching).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import TABLE2_SYSTEMS, availability_trend, table2


def _rows_by_system(rows):
    return {row.system: row for row in rows}


class TestTable2Pins:
    def test_structure_at_n64(self):
        rows = table2(64, 0.125, rng=np.random.default_rng(0))
        assert [row.system for row in rows] == list(TABLE2_SYSTEMS)
        by_system = _rows_by_system(rows)
        # (n, max_b, resilience) per system — the paper's structural columns.
        expected = {
            "Threshold": (64, 15, 16),
            "Grid": (64, 2, 3),
            "M-Grid": (64, 3, 6),
            "RT(4,3)": (64, 3, 7),
            "boostFPP": (65, 1, 7),
            "M-Path": (64, 4, 5),
        }
        for system, (n, max_b, resilience) in expected.items():
            row = by_system[system]
            assert (row.n, row.max_b, row.resilience) == (n, max_b, resilience)

    def test_load_columns_at_n64(self):
        rows = _rows_by_system(table2(64, 0.125, rng=np.random.default_rng(0)))
        expected_loads = {
            "Threshold": 48 / 64,
            "Grid": 43 / 64,
            "M-Grid": 28 / 64,
            "RT(4,3)": (3 / 4) ** 3,
            "boostFPP": 16 / 65,
            "M-Path": 2 * (3 / 8) - (3 / 8) ** 2,  # k = ceil(sqrt(2*4+1)) = 3
        }
        for system, load in expected_loads.items():
            assert rows[system].load == pytest.approx(load, abs=1e-12), system
        # The dagger footnote: exactly these three are load-optimal.
        optimal = [row.system for row in rows.values() if row.load_optimal]
        assert optimal == ["M-Grid", "boostFPP", "M-Path"]

    def test_crash_probability_columns_at_n64(self):
        rows = _rows_by_system(table2(64, 0.125, rng=np.random.default_rng(0)))
        # Closed-form rows: tight pins.
        assert rows["Threshold"].crash_probability == pytest.approx(
            0.0017980889, abs=1e-8
        )
        assert rows["RT(4,3)"].crash_probability == pytest.approx(
            0.0064380071, abs=1e-8
        )
        assert rows["boostFPP"].crash_probability == pytest.approx(
            0.4022853720, abs=1e-8
        )
        assert rows["M-Path"].crash_probability == pytest.approx(1.0, abs=1e-9)
        # Monte-Carlo rows: seeded values with statistical slack.
        assert rows["Grid"].crash_probability == pytest.approx(0.9037, abs=0.02)
        assert rows["M-Grid"].crash_probability == pytest.approx(0.2848, abs=0.02)

    def test_rejects_non_square_n(self):
        from repro.exceptions import ConstructionError

        with pytest.raises(ConstructionError):
            table2(60)


class TestAvailabilityTrendPins:
    def test_threshold_trend_closed_form(self):
        values = availability_trend("Threshold", [16, 64], 0.1)
        assert values[0] == pytest.approx(5.0453449e-4, rel=1e-5)
        assert values[1] == pytest.approx(6.1964203e-15, rel=1e-4)

    def test_rt_trend_closed_form(self):
        values = availability_trend("RT(4,3)", [16, 64], 0.1)
        assert values[0] == pytest.approx(1.5289740e-2, rel=1e-5)
        assert values[1] == pytest.approx(1.3742259e-3, rel=1e-5)

    def test_condorcet_directions(self):
        # The Table 2 asymptotic column: Threshold/RT/boostFPP improve with
        # n, Grid/M-Grid degrade.
        rng = np.random.default_rng(2)
        improving = availability_trend("Threshold", [16, 64, 144], 0.1)
        assert improving[0] > improving[-1]
        degrading = availability_trend("M-Grid", [16, 64, 144], 0.1, rng=rng)
        assert degrading[0] < degrading[-1]

    def test_unknown_system_rejected(self):
        from repro.exceptions import ConstructionError

        with pytest.raises(ConstructionError):
            availability_trend("Octopus", [16], 0.1)
