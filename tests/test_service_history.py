"""History serialisation and the golden live-service fixture.

Two halves: (1) property tests for the JSONL history codec in
:mod:`repro.simulation.history` — every record round-trips through
``record_to_dict``/``record_from_dict`` and dump/load, with values frozen
back into hashable form; (2) offline replay of the pinned golden fixture
under ``tests/fixtures/`` — a history recorded from a *live* 16-replica
``mgrid(4, b=1)`` cluster with one ``forge-on-read`` Byzantine replica
(see ``scripts/make_service_fixture.py``).  The fixture must keep passing
the PR-3 checker and the live-traffic conformance bounds without any
sockets, pinning the service stack's output format and its guarantees.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import service_conformance
from repro.api.registry import SystemSpec, build
from repro.exceptions import SimulationError
from repro.simulation.engine import resolve_strategy
from repro.simulation.history import (
    HistoryCheck,
    OperationRecord,
    check_register_history,
    dump_history_jsonl,
    freeze_value,
    load_history_jsonl,
    record_from_dict,
    record_to_dict,
)
from repro.simulation.messages import Timestamp, ValueTimestampPair

FIXTURES = Path(__file__).parent / "fixtures"


# ----------------------------------------------------------------------
# Record <-> dict round-trips.
# ----------------------------------------------------------------------
def _random_record(rng: np.random.Generator, index: int) -> OperationRecord:
    kind = "write" if rng.random() < 0.5 else "read"
    success = bool(rng.random() < 0.9)
    ts = Timestamp(counter=int(rng.integers(0, 50)), client_id=int(rng.integers(0, 8)))
    value = freeze_value(
        [int(rng.integers(100)), {"k": f"v{index}"}, None, bool(rng.integers(2))]
    )
    pair = ValueTimestampPair(value=value, timestamp=ts)
    quorum = frozenset(int(x) for x in rng.choice(16, size=4, replace=False))
    return OperationRecord(
        client_id=int(rng.integers(0, 8)),
        kind=kind,
        invoked_at=float(index),
        responded_at=float(index) + float(rng.random()),
        success=success,
        value=value if success else None,
        timestamp=ts if success else None,
        quorum=quorum if success else None,
        attempts=int(rng.integers(1, 4)),
        attempted_pair=pair if kind == "write" else None,
    )


@pytest.mark.parametrize("seed", [5, 29, 83])
def test_record_dict_round_trip(seed):
    rng = np.random.default_rng(seed)
    for index in range(100):
        record = _random_record(rng, index)
        # The dict must be JSON-serialisable, and survive a JSON round-trip.
        payload = json.loads(json.dumps(record_to_dict(record)))
        assert record_from_dict(payload) == record


def test_jsonl_file_round_trip(tmp_path, rng):
    records = [_random_record(rng, index) for index in range(50)]
    path = tmp_path / "history.jsonl"
    assert dump_history_jsonl(records, path) == 50
    assert load_history_jsonl(path) == records


def test_tuple_values_survive_as_frozen_equivalents(tmp_path):
    """Tuples become JSON lists on disk but load back frozen (hashable)."""
    record = OperationRecord(
        client_id=0,
        kind="read",
        invoked_at=0.0,
        responded_at=1.0,
        success=True,
        value=("client-3", 7),
        timestamp=Timestamp(counter=7, client_id=3),
        quorum=frozenset([("r", 0), ("r", 1)]),
    )
    path = tmp_path / "one.jsonl"
    dump_history_jsonl([record], path)
    (loaded,) = load_history_jsonl(path)
    assert loaded.value == ("client-3", 7)
    assert hash(loaded.value) == hash(("client-3", 7))
    assert loaded.quorum == frozenset([("r", 0), ("r", 1)])


@pytest.mark.parametrize(
    "line",
    [
        "not json",
        "[1,2]",
        '{"kind":"read"}',  # missing fields
        '{"client_id":"x","kind":"read","invoked_at":0,"responded_at":1,"success":true}',
        '{"client_id":0,"kind":"read","invoked_at":0,"responded_at":1,"success":true,"timestamp":[1]}',
    ],
)
def test_malformed_history_lines_rejected(tmp_path, line):
    path = tmp_path / "bad.jsonl"
    path.write_text(line + "\n", encoding="utf-8")
    with pytest.raises(SimulationError):
        load_history_jsonl(path)


def test_missing_history_file_rejected(tmp_path):
    with pytest.raises(SimulationError):
        load_history_jsonl(tmp_path / "absent.jsonl")


# ----------------------------------------------------------------------
# Golden fixture: a live mgrid(4, b=1) history with 1 Byzantine replica.
# ----------------------------------------------------------------------
@dataclass
class _ReplayResult:
    """ServiceRunResult-shaped view over a replayed fixture history.

    ``service_conformance`` is duck-typed, so an offline replay only needs
    the attributes the checks read.
    """

    system: object
    b: int
    strategy: object
    records: list
    check: HistoryCheck
    per_server_load: dict


@pytest.fixture(scope="module")
def golden():
    meta = json.loads((FIXTURES / "service_mgrid_meta.json").read_text())
    records = load_history_jsonl(FIXTURES / "service_mgrid_history.jsonl")
    return meta, records


def test_golden_fixture_matches_metadata(golden):
    meta, records = golden
    assert meta["spec"] == {"construction": "mgrid", "params": {"side": 4, "b": 1}}
    assert meta["byzantine"] == 1 and meta["byzantine_behaviour"] == "forge-on-read"
    assert len(records) == meta["operations"]
    assert meta["check"]["ok"] is True


def test_golden_fixture_passes_checker(golden):
    meta, records = golden
    check = check_register_history(records)
    assert check.ok, check.violations
    assert check.fabricated_reads == 0
    assert check.stale_reads == 0
    assert check.concurrent_pairs == meta["check"]["concurrent_pairs"]
    # The history is genuinely concurrent, not an accidental serial replay.
    assert check.concurrent_pairs > 0


def test_golden_fixture_passes_live_conformance(golden):
    meta, records = golden
    spec = SystemSpec(construction="mgrid", params=dict(meta["spec"]["params"]))
    system = build(spec)
    successful = [record for record in records if record.success]
    # Reconstruct the per-server empirical load exactly as run_load accounts
    # it: quorum accesses of successful operations over successful ops.
    per_server_load = {
        server: sum(1 for r in successful if r.quorum and server in r.quorum)
        / max(1, len(successful))
        for server in system.universe
    }
    replay = _ReplayResult(
        system=system,
        b=meta["b"],
        strategy=resolve_strategy(system, meta["strategy"]),
        records=records,
        check=check_register_history(records),
        per_server_load=per_server_load,
    )
    report = service_conformance(replay)
    failed = [check.metric for check in report.checks if not check.ok]
    assert report.ok, failed
    metrics = {check.metric for check in report.checks}
    assert {"fabricated-reads", "stale-read-rate", "history-safety", "load-envelope"} <= metrics
