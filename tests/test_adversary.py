"""Adaptive-adversary tests: policies, the round loop, and the paper bounds.

The adversary layer (:mod:`repro.simulation.adversary`) re-chooses the fault
set between workload rounds from observed load; the paper's claims are
worst-case, so the empirical metrics must respect them *even then*:

* the aggregate load stays inside the restricted-strategy envelope and above
  the ``L(Q)`` LP value (Definition 3.8) — the two-sided squeeze of
  :func:`repro.analysis.conformance.load_conformance`;
* within ``b`` Byzantine servers there are zero fabricated and zero stale
  reads (Lemma 3.6), and an *over-budget* adversary demonstrably breaks
  that — the checker has teeth.

Against a skewed (non-optimal) strategy the greedy adversary must also beat
the i.i.d. crash baseline on average: adaptivity has to matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGrid, MaskingGrid
from repro.analysis import (
    adversarial_conformance,
    load_conformance,
    masking_conformance,
    restricted_induced_loads,
    worst_case_induced_load,
)
from repro.exceptions import SimulationError
from repro.simulation import (
    AdaptiveScenario,
    FaultInjector,
    GreedyLoadAdversary,
    StaleReadAdversary,
    WorkloadScenario,
    resolve_strategy,
    run_adversarial_workload,
    run_scenario,
)


@pytest.fixture
def system():
    return MGrid(5, 1)


# ----------------------------------------------------------------------
# Policies.
# ----------------------------------------------------------------------
class TestPolicies:
    def test_hottest_ranks_by_count_then_universe_order(self, system):
        universe = system.universe
        counts = {server: 0 for server in universe}
        hot = universe.elements[7]
        counts[hot] = 10
        policy = GreedyLoadAdversary()
        chosen = policy.hottest(universe, counts, 2)
        assert hot in chosen
        # The tie among the zero-count rest breaks by universe position.
        assert universe.elements[0] in chosen

    def test_cold_start_is_deterministic(self, system):
        universe = system.universe
        policy = GreedyLoadAdversary()
        first = policy.hottest(universe, {}, 3)
        assert first == frozenset(universe.elements[:3])

    def test_budget_defaults_to_b_and_clamps(self, system):
        universe = system.universe
        assert GreedyLoadAdversary().budget(2, universe) == 2
        assert GreedyLoadAdversary(corruptions=5).budget(1, universe) == 5
        assert GreedyLoadAdversary(corruptions=10**6).budget(1, universe) == universe.size
        assert GreedyLoadAdversary(corruptions=-3).budget(1, universe) == 0

    def test_greedy_crashes_and_stale_corrupts(self, system):
        universe = system.universe
        counts = {server: 1 for server in universe}
        crash = GreedyLoadAdversary().choose(universe, 2, counts)
        lie = StaleReadAdversary().choose(universe, 2, counts)
        assert crash.num_crashed == 2 and crash.num_byzantine == 0
        assert lie.num_byzantine == 2 and lie.num_crashed == 0

    def test_adaptive_scenario_validation(self):
        with pytest.raises(SimulationError):
            AdaptiveScenario(name="x", policy=GreedyLoadAdversary(), rounds=0)
        with pytest.raises(SimulationError):
            AdaptiveScenario(
                name="x", policy=GreedyLoadAdversary(), byzantine_model="nope"
            )


# ----------------------------------------------------------------------
# The round loop.
# ----------------------------------------------------------------------
class TestRoundLoop:
    def test_accounting_is_conserved(self, system):
        result = run_adversarial_workload(
            system,
            b=1,
            policy=GreedyLoadAdversary(),
            num_operations=200,
            rounds=8,
            rng=np.random.default_rng(7),
        )
        assert len(result.rounds) == 8
        assert sum(r.result.operations for r in result.rounds) == 200
        succeeded = result.successful_reads + result.successful_writes
        assert succeeded + result.failed_operations == 200
        assert result.empirical_load == pytest.approx(
            max(result.per_server_load.values())
        )

    def test_trajectory_reacts_to_observed_load(self, system):
        result = run_adversarial_workload(
            system,
            b=1,
            policy=GreedyLoadAdversary(),
            num_operations=400,
            rounds=8,
            rng=np.random.default_rng(3),
        )
        trajectory = result.corruption_trajectory
        # Round 0 is the cold start (universe order); later rounds target a
        # genuinely observed hot server.
        assert trajectory[0] == frozenset(system.universe.elements[:1])
        assert any(choice != trajectory[0] for choice in trajectory[1:])

    def test_run_is_seed_deterministic(self, system):
        runs = [
            run_adversarial_workload(
                system,
                b=1,
                policy=GreedyLoadAdversary(),
                num_operations=200,
                rounds=8,
                rng=np.random.default_rng(11),
            )
            for _ in range(2)
        ]
        assert runs[0].corruption_trajectory == runs[1].corruption_trajectory
        assert runs[0].per_server_load == runs[1].per_server_load
        assert runs[0].empirical_load == runs[1].empirical_load

    def test_rejects_degenerate_round_counts(self, system):
        with pytest.raises(SimulationError):
            run_adversarial_workload(
                system, b=1, policy=GreedyLoadAdversary(), num_operations=3, rounds=4
            )
        with pytest.raises(SimulationError):
            run_adversarial_workload(
                system, b=1, policy=GreedyLoadAdversary(), rounds=0
            )
        with pytest.raises(SimulationError):
            run_adversarial_workload(system, b=1, policy="greedy")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Conformance with the paper bounds.
# ----------------------------------------------------------------------
class TestPaperBounds:
    @pytest.mark.parametrize("policy", [GreedyLoadAdversary(), StaleReadAdversary()])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_adaptive_runs_stay_inside_every_bound(self, system, policy, seed):
        result, report = adversarial_conformance(
            system, b=1, policy=policy, num_operations=400, rounds=8, seed=seed
        )
        report.require()  # raises ConformanceError on any violation
        assert report.check("fabricated-reads").observed == 0
        assert report.check("stale-read-rate").observed == 0

    def test_conformance_holds_on_the_masking_grid_too(self):
        system = MaskingGrid(9, 2)
        result, report = adversarial_conformance(
            system, b=2, policy=StaleReadAdversary(), num_operations=300, rounds=6
        )
        report.require()

    def test_worst_case_bound_dominates_every_realised_round(self, system):
        result = run_adversarial_workload(
            system,
            b=1,
            policy=GreedyLoadAdversary(),
            num_operations=300,
            rounds=6,
            rng=np.random.default_rng(5),
        )
        report = load_conformance(result, system, b=1)
        envelope = report.check("load-envelope").bound
        worst = report.check("load-worst-case").bound
        assert worst >= envelope
        assert worst == pytest.approx(
            worst_case_induced_load(system, result.strategy, b=1)
        )

    def test_adaptive_beats_the_iid_crash_baseline(self, system):
        """Adaptivity must matter: the greedy adversary spends its whole
        budget on a live target every round, while i.i.d. crashes at the
        matched rate ``p = b/n`` often crash nothing.  Conditioned on staying
        within the masking budget (the regime the paper's guarantees cover),
        the adaptive trajectory induces measurably more load — both in the
        analytic restricted-strategy loads and in the empirical per-round
        measurements."""
        universe = system.universe
        strategy = resolve_strategy(system, None)
        result = run_adversarial_workload(
            system,
            b=1,
            policy=GreedyLoadAdversary(),
            num_operations=400,
            rounds=8,
            strategy=strategy,
            rng=np.random.default_rng(0),
        )
        adaptive_analytic = restricted_induced_loads(
            strategy, universe, [r.fault.crashed for r in result.rounds]
        )
        adaptive_empirical = [r.result.empirical_load for r in result.rounds]

        injector = FaultInjector(universe, np.random.default_rng(42))
        draws = [
            injector.independent_crashes(1 / universe.size) for _ in range(400)
        ]
        within_budget = [draw for draw in draws if draw.num_crashed <= 1]
        assert len(within_budget) > 200  # P(<=1 crash) ~ 0.73 at p = 1/25
        iid_analytic = restricted_induced_loads(
            strategy, universe, [draw.crashed for draw in within_budget]
        )
        iid_empirical = []
        for index, draw in enumerate(within_budget[: len(adaptive_empirical) * 6]):
            scenario = WorkloadScenario.from_fault_scenario(draw, name="iid-baseline")
            iid_empirical.append(
                run_scenario(
                    system,
                    b=1,
                    num_operations=50,
                    scenario=scenario,
                    strategy=strategy,
                    rng=np.random.default_rng(1000 + index),
                ).empirical_load
            )
        assert np.nanmean(adaptive_analytic) > np.nanmean(iid_analytic) + 0.02
        assert np.mean(adaptive_empirical) > np.mean(iid_empirical) + 0.02

    def test_overloaded_adversary_breaks_masking(self, system):
        """Beyond the budget (2b+1 liars in the intersections) fabrication
        becomes possible — the negative control showing the checks have teeth."""
        result = run_adversarial_workload(
            system,
            b=1,
            policy=StaleReadAdversary(corruptions=system.universe.size // 2),
            num_operations=300,
            rounds=6,
            rng=np.random.default_rng(2),
            allow_overload=True,
        )
        assert result.consistency_violations > 0
        report = masking_conformance(result, b=1)
        assert not report.ok
        assert {check.metric for check in report.failures} >= {"byzantine-budget"}
