"""Property-based fuzz of the concurrent-history checker.

:func:`repro.simulation.history.check_register_history` is the oracle the
whole simulation layer leans on — a checker that misses violations would
make every "consistent" verdict in the suite meaningless.  These tests
generate *valid* histories from real event-driven runs, then inject each
class of violation the masking register forbids (stale read, fabricated
value, per-client timestamp regression, real-time order inversion,
duplicate write timestamps) and assert the right counter fires.  The
unmutated histories must keep passing: mutations, not the generator, are
what the checker flags.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import MGrid
from repro.simulation import (
    LatencyModel,
    Timestamp,
    ValueTimestampPair,
    check_register_history,
    run_event_workload,
)

SEEDS = [1, 7, 23]


def _history(seed: int):
    """A genuine concurrent history from the event-driven protocol stack."""
    result = run_event_workload(
        MGrid(4, 0),
        b=0,
        num_clients=6,
        operations_per_client=10,
        latency=LatencyModel.uniform(1.0, 0.5),
        rng=np.random.default_rng(seed),
        keep_history=True,
    )
    assert result.history, "keep_history must populate the records"
    return list(result.history)


def _successful_reads(records):
    return [i for i, r in enumerate(records) if r.kind == "read" and r.success]


def _completed_writes(records):
    return sorted(
        (i for i, r in enumerate(records) if r.kind == "write" and r.success),
        key=lambda i: records[i].responded_at,
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestHistoryFuzz:
    def test_unmutated_history_is_clean(self, seed):
        check = check_register_history(_history(seed))
        assert check.ok
        assert check.operations == 60
        assert check.concurrent_pairs > 0  # the runs genuinely interleave

    def test_injected_stale_read_is_flagged(self, seed):
        records = _history(seed)
        writes = _completed_writes(records)
        # A read invoked after the first write completed, rewound to the
        # initial pair: legitimate value, provably stale timestamp.
        first_done = records[writes[0]].responded_at
        victims = [
            i for i in _successful_reads(records)
            if records[i].invoked_at > first_done
        ]
        assert victims, "the workload must contain a read after a write"
        victim = victims[-1]
        records[victim] = replace(
            records[victim], value=None, timestamp=Timestamp.zero()
        )
        check = check_register_history(records)
        assert check.stale_reads >= 1
        assert not check.ok

    def test_injected_fabricated_value_is_flagged(self, seed):
        records = _history(seed)
        victim = _successful_reads(records)[0]
        records[victim] = replace(
            records[victim],
            value="forged-by-nobody",
            timestamp=Timestamp(counter=10**6, client_id=99),
        )
        check = check_register_history(records)
        assert check.fabricated_reads >= 1
        assert not check.ok

    def test_injected_timestamp_regression_is_flagged(self, seed):
        records = _history(seed)
        by_client: dict[int, list[int]] = {}
        for index, record in enumerate(records):
            if record.kind == "write" and record.attempted_pair is not None:
                by_client.setdefault(record.client_id, []).append(index)
        client, indices = next(
            (c, idx) for c, idx in by_client.items() if len(idx) >= 2
        )
        first, second = indices[0], indices[-1]
        # A unique timestamp strictly below the client's earlier write:
        # same counter, impossible (negative) client id as tiebreak.
        regressed = Timestamp(
            counter=records[first].attempted_pair.timestamp.counter, client_id=-5
        )
        pair = ValueTimestampPair(
            value=records[second].attempted_pair.value, timestamp=regressed
        )
        records[second] = replace(
            records[second], timestamp=regressed, attempted_pair=pair
        )
        check = check_register_history(records)
        assert check.write_order_violations >= 1
        assert not check.ok

    def test_injected_real_time_inversion_is_flagged(self, seed):
        records = _history(seed)
        writes = _completed_writes(records)
        early = records[writes[0]]
        laters = [
            i for i in writes if records[i].invoked_at > early.responded_at
        ]
        assert laters, "need a write that starts after another completed"
        victim = laters[-1]
        # Push the later write below every real timestamp: it can no longer
        # exceed the floor installed by the writes completed before it.
        inverted = Timestamp(counter=0, client_id=-1)
        pair = ValueTimestampPair(
            value=records[victim].attempted_pair.value, timestamp=inverted
        )
        records[victim] = replace(
            records[victim], timestamp=inverted, attempted_pair=pair
        )
        check = check_register_history(records)
        assert check.write_order_violations >= 1
        assert not check.ok

    def test_injected_duplicate_timestamp_is_flagged(self, seed):
        records = _history(seed)
        writes = [
            i for i, r in enumerate(records)
            if r.kind == "write" and r.attempted_pair is not None
        ]
        source, target = writes[0], writes[-1]
        records[target] = replace(
            records[target],
            timestamp=records[source].attempted_pair.timestamp,
            attempted_pair=records[source].attempted_pair,
        )
        check = check_register_history(records)
        assert check.duplicate_write_timestamps >= 1
        assert not check.ok


def test_mutations_compose(rng):
    """Several independent corruptions in one history are all counted."""
    records = _history(3)
    reads = _successful_reads(records)
    fab, stale = reads[0], reads[-1]
    assert fab != stale
    records[fab] = replace(
        records[fab],
        value="forged",
        timestamp=Timestamp(counter=10**6, client_id=42),
    )
    writes = _completed_writes(records)
    first_done = records[writes[0]].responded_at
    if records[stale].invoked_at > first_done:
        records[stale] = replace(
            records[stale], value=None, timestamp=Timestamp.zero()
        )
    check = check_register_history(records)
    assert check.fabricated_reads >= 1
    assert not check.ok
    assert len(check.violations) >= 1
