"""Tests for the vectorised scenario engine and the workload scenario suite.

Covers the three properties the engine is built around:

* **seeded determinism** — a run is a pure function of the rng state;
* **mode agreement** — the vectorised path and the per-operation sequential
  reference produce bit-for-bit identical :class:`WorkloadResult` objects
  for the same seed, across scenario classes;
* **honest accounting** — the empirical load counts successful operations
  only (the Definition 3.8 fix), with failed probes reported separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExplicitQuorumSystem,
    MGrid,
    SimulationError,
    Strategy,
    ThresholdQuorumSystem,
    exact_load,
)
from repro.simulation import (
    FaultScenario,
    WorkloadScenario,
    byzantine_scenario,
    churn_scenario,
    correlated_failure_scenario,
    crash_scenario,
    fault_free_scenario,
    partition_scenario,
    random_crash_scenario,
    run_scenario,
    run_workload,
    scenario_suite,
)


@pytest.fixture
def grid_system():
    """A small grid system whose runs are fast but non-trivial (16 servers)."""
    return MGrid(4, 1)


def _grid_scenarios(system, rng):
    """Three-plus scenario classes over the grid universe, for agreement runs."""
    universe = system.universe
    elements = universe.elements
    return [
        fault_free_scenario(),
        crash_scenario(universe, [elements[0], elements[5]]),
        byzantine_scenario(universe, [elements[3]], model="fabricate"),
        churn_scenario(
            universe,
            [elements[:2], elements[2:4], ()],
            name="churn",
        ),
        partition_scenario(universe, elements[: (3 * len(elements)) // 4]),
    ]


class TestSeededDeterminism:
    def test_same_seed_same_result(self, grid_system):
        results = [
            run_scenario(
                grid_system,
                b=1,
                num_operations=250,
                rng=np.random.default_rng(99),
            )
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_different_seeds_differ(self, grid_system):
        first = run_scenario(
            grid_system, b=1, num_operations=250, rng=np.random.default_rng(1)
        )
        second = run_scenario(
            grid_system, b=1, num_operations=250, rng=np.random.default_rng(2)
        )
        assert first != second


class TestEngineLegacyAgreement:
    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_vectorised_matches_sequential_across_scenarios(self, grid_system, seed):
        """Same rng seed => identical WorkloadResult from both execution paths."""
        scenarios = _grid_scenarios(grid_system, np.random.default_rng(0))
        assert len(scenarios) >= 3
        for scenario in scenarios:
            vectorised = run_workload(
                grid_system,
                b=1,
                num_operations=300,
                scenario=scenario,
                rng=np.random.default_rng(seed),
            )
            sequential = run_workload(
                grid_system,
                b=1,
                num_operations=300,
                scenario=scenario,
                rng=np.random.default_rng(seed),
                engine="sequential",
            )
            assert vectorised == sequential, scenario.name

    def test_agreement_under_optimal_strategy(self, grid_system):
        scenario = crash_scenario(grid_system.universe, [grid_system.universe.elements[0]])
        vectorised = run_workload(
            grid_system,
            b=1,
            num_operations=200,
            scenario=scenario,
            strategy="optimal",
            rng=np.random.default_rng(21),
        )
        sequential = run_workload(
            grid_system,
            b=1,
            num_operations=200,
            scenario=scenario,
            strategy="optimal",
            rng=np.random.default_rng(21),
            engine="sequential",
        )
        assert vectorised == sequential

    def test_agreement_beyond_masking_bound(self, grid_system):
        """Violation counting agrees too (equivocating camps over the bound)."""
        elements = grid_system.universe.elements
        scenario = byzantine_scenario(
            grid_system.universe, elements[:6], model="equivocate"
        )
        kwargs = dict(
            b=1, num_operations=300, scenario=scenario, allow_overload=True
        )
        vectorised = run_workload(
            grid_system, rng=np.random.default_rng(31), **kwargs
        )
        sequential = run_workload(
            grid_system, rng=np.random.default_rng(31), engine="sequential", **kwargs
        )
        assert vectorised == sequential
        assert vectorised.consistency_violations > 0


class TestEmpiricalLoadAccounting:
    def test_crash_heavy_scenario_keeps_load_a_frequency(self):
        """Regression: failed probes must not inflate the empirical load.

        Phase 1 is fault-free, phase 2 kills a transversal, so half the
        operations fail after a full probe budget.  The pre-fix accounting
        tallied those probes but normalised by successful operations only,
        pushing ``empirical_load`` above the true access frequency (and
        potentially above 1); the fixed accounting keeps it a frequency.
        """
        system = ThresholdQuorumSystem(5, 4)
        scenario = churn_scenario(
            system.universe, [(), (0, 1)], name="half-dead"
        )
        result = run_workload(
            system,
            b=0,
            num_operations=400,
            scenario=scenario,
            rng=np.random.default_rng(5),
        )
        assert result.failed_operations > 100
        assert 0.0 < result.empirical_load <= 1.0
        assert all(0.0 <= value <= 1.0 for value in result.per_server_load.values())
        # The diagnostic tally still sees the failed probes.
        assert max(result.per_server_attempted.values()) > result.empirical_load

    def test_total_outage_reports_zero_load_and_nonzero_attempts(self):
        system = ThresholdQuorumSystem(5, 4)
        scenario = crash_scenario(system.universe, [0, 1])
        result = run_workload(
            system,
            b=0,
            num_operations=50,
            scenario=scenario,
            rng=np.random.default_rng(6),
        )
        assert result.availability == 0.0
        assert result.empirical_load == 0.0
        assert max(result.per_server_attempted.values()) > 0.0
        assert max(result.per_server_messages.values()) > 0.0

    def test_fault_free_per_server_load_sums_to_quorum_size(self, grid_system):
        result = run_workload(
            grid_system, b=1, num_operations=300, rng=np.random.default_rng(11)
        )
        total = sum(result.per_server_load.values())
        assert total == pytest.approx(grid_system.min_quorum_size())

    def test_messages_exceed_quorum_accesses(self, grid_system):
        """Writes broadcast twice, so message frequency dominates access frequency."""
        result = run_workload(
            grid_system, b=1, num_operations=300, rng=np.random.default_rng(12)
        )
        assert max(result.per_server_messages.values()) > result.empirical_load


class TestResilienceSemantics:
    def test_crashes_below_resilience_cost_no_availability(self, grid_system):
        f = grid_system.resilience()
        assert f >= 1
        crashed = grid_system.universe.elements[:f]
        result = run_workload(
            grid_system,
            b=1,
            num_operations=150,
            scenario=crash_scenario(grid_system.universe, crashed),
            rng=np.random.default_rng(13),
        )
        assert result.availability == pytest.approx(1.0)

    def test_violations_zero_within_masking_bound(self, grid_system):
        elements = grid_system.universe.elements
        for model in ("fabricate", "equivocate"):
            scenario = byzantine_scenario(
                grid_system.universe, [elements[7]], model=model
            )
            result = run_workload(
                grid_system,
                b=1,
                num_operations=250,
                scenario=scenario,
                rng=np.random.default_rng(14),
            )
            assert result.consistency_violations == 0
            assert result.stale_reads == 0


class TestStrategyWiring:
    def test_optimal_strategy_reaches_the_lp_load(self):
        """Wiring exact_load's strategy into the clients realises L(Q)."""
        system = ExplicitQuorumSystem(
            range(3),
            [{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}],
            name="triangle",
        )
        analytic = exact_load(system).load
        assert analytic == pytest.approx(2 / 3)
        optimal = run_workload(
            system,
            b=0,
            num_operations=3000,
            strategy="optimal",
            rng=np.random.default_rng(15),
        )
        uniform = run_workload(
            system,
            b=0,
            num_operations=3000,
            strategy="uniform",
            rng=np.random.default_rng(15),
        )
        assert optimal.empirical_load == pytest.approx(analytic, abs=0.04)
        assert uniform.empirical_load == pytest.approx(0.75, abs=0.04)
        assert optimal.empirical_load < uniform.empirical_load

    def test_explicit_strategy_instance_is_used(self, grid_system):
        quorum = grid_system.quorums()[0]
        strategy = Strategy({quorum: 1.0})
        result = run_workload(
            grid_system,
            b=1,
            num_operations=100,
            strategy=strategy,
            rng=np.random.default_rng(16),
        )
        expected = {
            server: (1.0 if server in quorum else 0.0)
            for server in grid_system.universe
        }
        assert result.per_server_load == expected

    def test_unknown_strategy_specification_rejected(self, grid_system):
        with pytest.raises(SimulationError):
            run_workload(grid_system, b=1, num_operations=10, strategy="fastest")


class TestScenarioSuite:
    def test_factories_validate_inputs(self, grid_system):
        universe = grid_system.universe
        with pytest.raises(SimulationError):
            partition_scenario(universe, [])
        with pytest.raises(SimulationError):
            correlated_failure_scenario(universe, [universe.elements[:4]], [3])
        with pytest.raises(SimulationError):
            churn_scenario(universe, [])
        with pytest.raises(SimulationError):
            WorkloadScenario(
                name="bad",
                phases=(FaultScenario.fault_free(),),
                phase_fractions=(0.5,),
            )
        with pytest.raises(SimulationError):
            WorkloadScenario(
                name="bad-model",
                phases=(FaultScenario.fault_free(),),
                byzantine_model="gossip",
            )

    def test_phase_mapping_covers_all_operations(self):
        scenario = WorkloadScenario(
            name="three",
            phases=(
                FaultScenario.fault_free(),
                FaultScenario(crashed=frozenset({0})),
                FaultScenario.fault_free(),
            ),
            phase_fractions=(0.5, 0.25, 0.25),
        )
        phases = scenario.phase_of_operations(100)
        assert len(phases) == 100
        assert list(np.bincount(phases)) == [50, 25, 25]

    def test_suite_runs_under_both_strategies(self, grid_system, rng):
        suite = scenario_suite(grid_system.universe, b=1, rng=rng)
        names = {scenario.name for scenario in suite}
        assert {
            "fault-free",
            "iid-crash",
            "byzantine-fabricate",
            "byzantine-equivocate",
            "rack-failure",
            "partition",
            "churn",
        } <= names
        for scenario in suite:
            for strategy in ("uniform", "optimal"):
                result = run_workload(
                    grid_system,
                    b=1,
                    num_operations=60,
                    scenario=scenario,
                    strategy=strategy,
                    rng=np.random.default_rng(17),
                )
                assert result.operations == 60
                assert result.empirical_load <= 1.0

    def test_random_crash_scenario_draws_from_the_model(self, grid_system, rng):
        scenario = random_crash_scenario(grid_system.universe, 0.5, rng)
        assert scenario.num_phases == 1

    def test_scenario_mentioning_unknown_servers_rejected(self, grid_system):
        scenario = WorkloadScenario.from_fault_scenario(
            FaultScenario(crashed=frozenset({"nonexistent"}))
        )
        with pytest.raises(SimulationError):
            run_workload(grid_system, b=1, num_operations=10, scenario=scenario)

    def test_overload_requires_flag(self, grid_system):
        elements = grid_system.universe.elements
        scenario = byzantine_scenario(grid_system.universe, elements[:5])
        with pytest.raises(SimulationError):
            run_workload(grid_system, b=1, num_operations=10, scenario=scenario)


class TestRunnerCompatibility:
    def test_unknown_byzantine_behaviour_rejected(self, grid_system):
        with pytest.raises(SimulationError):
            run_workload(
                grid_system, b=1, num_operations=10, byzantine_behaviour="confuse"
            )

    def test_workload_scenario_model_wins_over_behaviour(self, grid_system):
        """A phased scenario's own vouching model is not overridden."""
        elements = grid_system.universe.elements
        scenario = byzantine_scenario(
            grid_system.universe, elements[:6], model="equivocate"
        )
        direct = run_scenario(
            grid_system,
            b=1,
            num_operations=200,
            scenario=scenario,
            allow_overload=True,
            rng=np.random.default_rng(18),
        )
        via_runner = run_workload(
            grid_system,
            b=1,
            num_operations=200,
            scenario=scenario,
            allow_overload=True,
            rng=np.random.default_rng(18),
        )
        assert direct == via_runner

    def test_invalid_arguments_rejected(self, grid_system):
        with pytest.raises(SimulationError):
            run_workload(grid_system, b=1, num_operations=0)
        with pytest.raises(SimulationError):
            run_workload(grid_system, b=1, num_operations=10, write_fraction=1.5)
        with pytest.raises(SimulationError):
            run_scenario(grid_system, b=1, num_operations=10, mode="telepathic")

    def test_num_clients_remains_tolerated(self, grid_system):
        # The legacy runner accepted any num_clients via max(1, num_clients).
        result = run_workload(grid_system, b=1, num_operations=10, num_clients=0)
        assert result.operations == 10
