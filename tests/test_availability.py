"""Unit tests for the crash probability Fp (Definition 3.10)."""

from __future__ import annotations

import pytest

from repro import (
    ComputationError,
    ExplicitQuorumSystem,
    exact_failure_probability,
    failure_probability,
    monte_carlo_failure_probability,
)
from repro.core.availability import (
    inclusion_exclusion_failure_probability,
    is_condorcet_sequence,
)


class TestExactEnumeration:
    def test_singleton(self, singleton_system):
        # The single quorum {0} dies exactly when server 0 dies.
        assert exact_failure_probability(singleton_system, 0.3).value == pytest.approx(0.3)

    def test_two_disjoint_singletons(self):
        system = ExplicitQuorumSystem(range(2), [{0, 1}], name="pair")
        # Quorum {0,1} dies when either server dies: 1 - (1-p)^2.
        value = exact_failure_probability(system, 0.2).value
        assert value == pytest.approx(1 - 0.8 ** 2)

    def test_majority_matches_binomial_tail(self, majority_5):
        p = 0.2
        value = exact_failure_probability(majority_5.to_explicit(), p).value
        assert value == pytest.approx(majority_5.crash_probability(p), abs=1e-12)

    def test_boundary_probabilities(self, majority_5):
        explicit = majority_5.to_explicit()
        assert exact_failure_probability(explicit, 0.0).value == pytest.approx(0.0)
        assert exact_failure_probability(explicit, 1.0).value == pytest.approx(1.0)

    def test_rejects_invalid_probability(self, majority_5):
        with pytest.raises(ComputationError):
            exact_failure_probability(majority_5.to_explicit(), 1.5)

    def test_refuses_large_universe(self, mgrid_7_3):
        with pytest.raises(ComputationError):
            exact_failure_probability(mgrid_7_3.to_explicit(), 0.1)


class TestInclusionExclusion:
    def test_agrees_with_enumeration(self, simple_system, fpp_order2):
        for system in (simple_system, fpp_order2):
            for p in (0.1, 0.4, 0.75):
                by_configs = exact_failure_probability(system, p).value
                by_quorums = inclusion_exclusion_failure_probability(system, p).value
                assert by_quorums == pytest.approx(by_configs, abs=1e-9)

    def test_refuses_many_quorums(self, threshold_9_7):
        with pytest.raises(ComputationError):
            inclusion_exclusion_failure_probability(threshold_9_7, 0.1)


class TestMonteCarlo:
    def test_close_to_exact(self, majority_5, rng):
        p = 0.3
        exact_value = majority_5.crash_probability(p)
        estimate = monte_carlo_failure_probability(
            majority_5, p, trials=20_000, rng=rng
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= exact_value <= high

    def test_zero_probability_never_fails(self, majority_5, rng):
        estimate = monte_carlo_failure_probability(majority_5, 0.0, trials=500, rng=rng)
        assert estimate.value == 0.0

    def test_invalid_trials_rejected(self, majority_5, rng):
        with pytest.raises(ComputationError):
            monte_carlo_failure_probability(majority_5, 0.1, trials=0, rng=rng)


class TestDispatch:
    def test_auto_uses_analytic_when_available(self, majority_5):
        result = failure_probability(majority_5, 0.2)
        assert result.method == "analytic"
        assert result.value == pytest.approx(majority_5.crash_probability(0.2))

    def test_auto_uses_exact_for_small_explicit_systems(self, simple_system):
        assert failure_probability(simple_system, 0.2).method == "exact"

    def test_explicit_method_selection(self, simple_system, rng):
        assert failure_probability(simple_system, 0.2, method="exact").method == "exact"
        assert (
            failure_probability(simple_system, 0.2, method="monte-carlo", rng=rng).method
            == "monte-carlo"
        )

    def test_analytic_method_requires_closed_form(self, simple_system):
        with pytest.raises(ComputationError):
            failure_probability(simple_system, 0.2, method="analytic")

    def test_unknown_method_rejected(self, simple_system):
        with pytest.raises(ComputationError):
            failure_probability(simple_system, 0.2, method="magic")


class TestMonotonicityAndCondorcet:
    def test_fp_monotone_in_p(self, majority_5):
        values = [majority_5.crash_probability(p) for p in (0.05, 0.1, 0.2, 0.4, 0.6)]
        assert values == sorted(values)

    def test_condorcet_trend_for_majorities(self):
        from repro import majority

        values = [majority(n).crash_probability(0.2) for n in (3, 7, 11, 15, 19)]
        assert is_condorcet_sequence(values)

    def test_anti_condorcet_trend_detected(self):
        assert not is_condorcet_sequence([0.1, 0.2, 0.4, 0.8])

    def test_condorcet_needs_two_points(self):
        with pytest.raises(ComputationError):
            is_condorcet_sequence([0.5])
