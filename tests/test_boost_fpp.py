"""Unit tests for boostFPP (Section 6) and the general boosting transform."""

from __future__ import annotations

import math

import pytest

from repro import (
    BoostedFPP,
    ConstructionError,
    CrumblingWall,
    RegularGrid,
    boost_masking,
    exact_load,
    load_lower_bound,
    majority,
    verify_masking,
)


class TestProposition61Parameters:
    def test_small_instance_parameters(self, boost_fpp_small):
        # q = 2, b = 1: n = 5 * 7 = 35, c = 4 * 3 = 12, IS = 3, MT = 2 * 3 = 6.
        assert boost_fpp_small.n == 35
        assert boost_fpp_small.min_quorum_size() == 12
        assert boost_fpp_small.min_intersection_size() == 3
        assert boost_fpp_small.min_transversal_size() == 6
        assert boost_fpp_small.masking_bound() == 1

    def test_parameters_match_theorem_4_7_algebra(self, boost_fpp_small):
        outer, inner = boost_fpp_small.plane, boost_fpp_small.threshold_block
        assert boost_fpp_small.min_quorum_size() == outer.min_quorum_size() * inner.min_quorum_size()
        assert boost_fpp_small.min_transversal_size() == (
            outer.min_transversal_size() * inner.min_transversal_size()
        )
        assert boost_fpp_small.min_intersection_size() == (
            outer.min_intersection_size() * inner.min_intersection_size()
        )

    def test_parameters_match_enumeration(self, boost_fpp_small):
        explicit = boost_fpp_small.to_explicit()
        assert explicit.min_quorum_size() == 12
        assert explicit.min_intersection_size() == 3
        assert explicit.min_transversal_size() == 6

    def test_masking_verified_literally(self, boost_fpp_small):
        verify_masking(boost_fpp_small.to_explicit(), 1)

    def test_paper_sized_instance(self):
        # The Section 8 instance: q = 3, b = 19 -> n = 1001, f = 79.
        system = BoostedFPP(3, 19)
        assert system.n == 1001
        assert system.min_quorum_size() == 58 * 4
        assert system.min_transversal_size() - 1 == 79
        assert system.masking_bound() == 19

    def test_invalid_parameters(self):
        with pytest.raises(ConstructionError):
            BoostedFPP(3, 0)
        with pytest.raises(ConstructionError):
            BoostedFPP(6, 2)  # 6 is not a prime power


class TestProposition62Load:
    def test_load_formula(self):
        system = BoostedFPP(3, 2)
        expected = (3 * 2 + 1) * 4 / ((4 * 2 + 1) * 13)
        assert system.load() == pytest.approx(expected)
        assert system.load() == pytest.approx(3 / (4 * 3), rel=0.35)

    def test_load_is_optimal(self):
        # Proposition 6.2: within a small constant of sqrt(2b/n) for any q, b.
        for q, b in [(2, 1), (2, 4), (3, 3), (4, 5)]:
            system = BoostedFPP(q, b)
            assert system.load() <= 1.7 * load_lower_bound(system.n, b)

    def test_load_matches_lp_on_small_instance(self, boost_fpp_small):
        lp = exact_load(boost_fpp_small.to_explicit()).load
        assert lp == pytest.approx(boost_fpp_small.load(), abs=1e-6)

    def test_scaling_policies(self):
        # Policy 1: fix q, increase b -> more masking, same load scale.
        fixed_q = [BoostedFPP(3, b).load() for b in (1, 5, 20)]
        assert max(fixed_q) - min(fixed_q) < 0.12
        # Policy 2: fix b, increase q -> load decreases.
        fixed_b = [BoostedFPP(q, 2).load() for q in (2, 3, 5, 7)]
        assert fixed_b == sorted(fixed_b, reverse=True)


class TestProposition63Availability:
    def test_crash_probability_composes(self, boost_fpp_small):
        p = 0.1
        inner_fp = boost_fpp_small.threshold_block.crash_probability(p)
        expected = 1 - (1 - inner_fp) ** 3
        assert boost_fpp_small.crash_probability(p) == pytest.approx(expected)

    def test_chernoff_closed_form(self):
        system = BoostedFPP(3, 19)
        p = 0.125
        expected = 4 * math.exp(-19 * (1 - 0.5) ** 2 / 2)
        assert system.crash_probability_chernoff_bound(p) == pytest.approx(expected)
        # The paper quotes this value as <= 0.372.
        assert expected == pytest.approx(0.372, abs=2e-3)

    def test_chernoff_bound_dominates_composed_estimate(self):
        system = BoostedFPP(3, 10)
        for p in (0.05, 0.1, 0.2):
            assert system.crash_probability(p) <= system.crash_probability_chernoff_bound(p) + 1e-9

    def test_bound_vacuous_above_one_quarter(self):
        assert BoostedFPP(3, 10).crash_probability_chernoff_bound(0.3) == 1.0

    def test_availability_improves_with_b_below_one_quarter(self):
        values = [BoostedFPP(3, b).crash_probability(0.1) for b in (1, 4, 10, 20)]
        assert values == sorted(values, reverse=True)

    def test_availability_collapses_above_one_quarter(self):
        # The p < 1/4 requirement is essential (remark after Prop 6.3).
        values = [BoostedFPP(3, b).crash_probability(0.3) for b in (1, 4, 10, 20)]
        assert values[-1] > 0.9


class TestGeneralBoosting:
    @pytest.mark.parametrize("b", [1, 2])
    def test_boosting_any_regular_system_gives_masking(self, b):
        for regular in (majority(3), RegularGrid(3), CrumblingWall([1, 2, 2])):
            boosted = boost_masking(regular, b)
            assert boosted.min_intersection_size() >= 2 * b + 1
            assert boosted.min_transversal_size() >= b + 1
            assert boosted.is_b_masking(b)
            assert boosted.n == regular.n * (4 * b + 1)

    def test_boosted_majority_literal_masking_check(self):
        boosted = boost_masking(majority(3), 1)
        verify_masking(boosted.to_explicit(), 1)

    def test_boost_zero_is_identity_blockwise(self):
        boosted = boost_masking(majority(3), 0)
        assert boosted.n == 3
        assert boosted.min_intersection_size() == majority(3).min_intersection_size()

    def test_negative_b_rejected(self):
        with pytest.raises(ConstructionError):
            boost_masking(majority(3), -1)

    def test_boosted_load_multiplies(self):
        regular = majority(5)
        boosted = boost_masking(regular, 1)
        assert boosted.load() == pytest.approx(regular.load() * 4 / 5)
