"""Unit tests for the lower bounds of Section 4.1 (Theorem 4.1, Props 4.3-4.5)."""

from __future__ import annotations

import math

import pytest

from repro import (
    BoostedFPP,
    ComputationError,
    MGrid,
    MPath,
    exact_load,
    load_lower_bound,
    load_optimality_ratio,
    masking_threshold,
    resilience_upper_bound_from_load,
)
from repro.core.bounds import (
    crash_probability_lower_bound,
    crash_probability_lower_bound_for_system,
    load_lower_bound_for_system,
    optimal_quorum_size,
)


class TestLoadLowerBound:
    def test_corollary_4_2_value(self):
        assert load_lower_bound(100, 2) == pytest.approx(math.sqrt(5 / 100))

    def test_theorem_4_1_with_quorum_size(self):
        # max{(2b+1)/c, c/n} with b=2, c=10, n=100 -> max{0.5, 0.1}.
        assert load_lower_bound(100, 2, quorum_size=10) == pytest.approx(0.5)
        assert load_lower_bound(100, 2, quorum_size=40) == pytest.approx(0.4)

    def test_bound_tight_at_optimal_quorum_size(self):
        n, b = 144, 4
        c = optimal_quorum_size(n, b)
        assert load_lower_bound(n, b, quorum_size=int(c)) == pytest.approx(
            load_lower_bound(n, b), rel=0.05
        )

    def test_regular_case_reduces_to_nw98(self):
        # b = 0 gives the Naor-Wool 1/sqrt(n) bound.
        assert load_lower_bound(64, 0) == pytest.approx(1 / 8)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ComputationError):
            load_lower_bound(0, 1)
        with pytest.raises(ComputationError):
            load_lower_bound(10, -1)
        with pytest.raises(ComputationError):
            load_lower_bound(10, 1, quorum_size=11)

    def test_every_construction_respects_the_bound(self, mgrid_7_3, rt_4_3_depth2):
        systems_and_b = [
            (mgrid_7_3, 3),
            (rt_4_3_depth2, rt_4_3_depth2.masking_bound()),
            (masking_threshold(13, 3), 3),
            (BoostedFPP(2, 1), 1),
            (MPath(7, 3), 3),
        ]
        for system, b in systems_and_b:
            assert system.load() >= load_lower_bound(system.n, b) - 1e-9

    def test_lp_load_respects_theorem_4_1(self, mgrid_7_3):
        lp = exact_load(mgrid_7_3).load
        assert lp >= load_lower_bound_for_system(mgrid_7_3, 3) - 1e-9

    def test_optimality_ratio(self):
        # M-Grid's load is within a small constant of the bound (Prop 5.2).
        system = MGrid(8, 3)
        ratio = load_optimality_ratio(system.n, 3, system.load())
        assert 1.0 <= ratio <= 2.0

    def test_optimality_ratio_rejects_degenerate_bound(self):
        with pytest.raises(ComputationError):
            load_optimality_ratio(0, 1, 0.5)


class TestCrashProbabilityLowerBounds:
    def test_proposition_4_3(self):
        assert crash_probability_lower_bound(0.1, min_transversal=3) == pytest.approx(1e-3)

    def test_proposition_4_4(self):
        assert crash_probability_lower_bound(0.1, quorum_size=7, b=2) == pytest.approx(1e-3)

    def test_proposition_4_5(self):
        assert crash_probability_lower_bound(0.1, b=2, balanced=True) == pytest.approx(1e-3)

    def test_strongest_bound_wins(self):
        value = crash_probability_lower_bound(
            0.1, min_transversal=5, quorum_size=8, b=3, balanced=True
        )
        # p^(b+1) = 1e-4 is the largest of {1e-5, 1e-2... wait c-2b=2 -> 1e-2}.
        assert value == pytest.approx(0.1 ** 2)

    def test_requires_some_parameters(self):
        with pytest.raises(ComputationError):
            crash_probability_lower_bound(0.1)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ComputationError):
            crash_probability_lower_bound(1.2, min_transversal=2)
        with pytest.raises(ComputationError):
            crash_probability_lower_bound(0.1, min_transversal=0)
        with pytest.raises(ComputationError):
            crash_probability_lower_bound(0.1, quorum_size=4, b=2)

    def test_exact_fp_respects_bound_for_threshold(self, mr98_threshold):
        p = 0.15
        bound = crash_probability_lower_bound_for_system(mr98_threshold, p, b=3)
        assert mr98_threshold.crash_probability(p) >= bound

    def test_exact_fp_respects_bound_for_rt(self, rt_4_3_depth2):
        p = 0.2
        bound = crash_probability_lower_bound(
            p, min_transversal=rt_4_3_depth2.min_transversal_size()
        )
        assert rt_4_3_depth2.crash_probability(p) >= bound


class TestTradeoffBound:
    def test_resilience_bounded_by_n_times_load(self):
        assert resilience_upper_bound_from_load(100, 0.25) == pytest.approx(25)

    def test_rejects_invalid(self):
        with pytest.raises(ComputationError):
            resilience_upper_bound_from_load(0, 0.5)
        with pytest.raises(ComputationError):
            resilience_upper_bound_from_load(10, 1.5)

    def test_constructions_respect_tradeoff(self, mgrid_7_3, rt_4_3_depth2):
        for system in (mgrid_7_3, rt_4_3_depth2, masking_threshold(17, 4), MPath(7, 3)):
            resilience = system.min_transversal_size() - 1
            assert resilience <= resilience_upper_bound_from_load(system.n, system.load()) + 1e-9
