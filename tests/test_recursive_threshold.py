"""Unit tests for the recursive threshold systems RT(k, l) (Section 5.2, Figure 2)."""

from __future__ import annotations

import math

import pytest

from repro import ConstructionError, RecursiveThreshold, exact_load, verify_masking


class TestConstruction:
    def test_figure2_instance(self, rt_4_3_depth2):
        assert rt_4_3_depth2.n == 16
        assert rt_4_3_depth2.num_quorums() == 256

    def test_parameter_validation(self):
        with pytest.raises(ConstructionError):
            RecursiveThreshold(4, 2, 2)   # l must exceed k/2
        with pytest.raises(ConstructionError):
            RecursiveThreshold(4, 4, 2)   # l must be below k
        with pytest.raises(ConstructionError):
            RecursiveThreshold(4, 3, 0)   # depth >= 1

    def test_depth_one_is_the_basic_block(self):
        system = RecursiveThreshold(4, 3, 1)
        assert system.n == 4
        assert system.num_quorums() == 4
        assert system.min_intersection_size() == 2

    def test_hqs_special_case(self):
        # Kumar's HQS is RT(3, 2); depth 2 has 9 servers.
        system = RecursiveThreshold(3, 2, 2)
        assert system.n == 9
        assert system.min_quorum_size() == 4
        assert system.min_transversal_size() == 4


class TestProposition53:
    @pytest.mark.parametrize("k,l,depth", [(4, 3, 1), (4, 3, 2), (3, 2, 2), (5, 4, 1)])
    def test_parameters_match_enumeration(self, k, l, depth):
        system = RecursiveThreshold(k, l, depth)
        explicit = system.to_explicit()
        assert explicit.min_quorum_size() == l ** depth
        assert explicit.min_intersection_size() == (2 * l - k) ** depth
        assert explicit.min_transversal_size() == (k - l + 1) ** depth
        assert explicit.num_quorums() == system.num_quorums()
        assert explicit.fairness() is not None

    def test_corollary_5_4_masking(self, rt_4_3_depth2):
        # b = min{(IS-1)/2, MT-1} = min{1, 3} = 1 at depth 2.
        assert rt_4_3_depth2.masking_bound() == 1
        verify_masking(rt_4_3_depth2, 1)

    def test_depth3_masks_more(self):
        system = RecursiveThreshold(4, 3, 3)
        # IS = 8, MT = 8 -> b = 3.
        assert system.masking_bound() == 3

    def test_basic_block_is_not_masking(self):
        # The 3-of-4 block has IS = 2 < 3, as the paper notes.
        assert RecursiveThreshold(4, 3, 1).masking_bound() == 0


class TestProposition55Load:
    def test_load_closed_form(self, rt_4_3_depth2):
        assert rt_4_3_depth2.load() == pytest.approx((3 / 4) ** 2)
        assert rt_4_3_depth2.load() == pytest.approx(16 ** -(1 - math.log(3, 4)), rel=1e-9)

    def test_load_matches_lp(self, rt_4_3_depth2):
        assert exact_load(rt_4_3_depth2).load == pytest.approx(rt_4_3_depth2.load(), abs=1e-6)

    def test_load_suboptimal_exponent(self):
        # RT(4,3) has load n^-0.2075 which is worse than the optimal n^-0.25
        # at its masking level (remark after Proposition 5.5).
        system = RecursiveThreshold(4, 3, 4)
        optimal = math.sqrt((2 * system.masking_bound() + 1) / system.n)
        assert system.load() > optimal


class TestAvailability:
    def test_block_crash_function_matches_polynomial(self, rt_4_3_depth2):
        # g(p) = 6p^2 - 8p^3 + 3p^4 for the 3-of-4 block.
        for p in (0.0, 0.1, 0.2324, 0.4, 1.0):
            expected = 6 * p ** 2 - 8 * p ** 3 + 3 * p ** 4
            assert rt_4_3_depth2.block_crash_function(p) == pytest.approx(expected, abs=1e-12)

    def test_crash_probability_recurrence(self, rt_4_3_depth2):
        p = 0.1
        g = rt_4_3_depth2.block_crash_function
        assert rt_4_3_depth2.crash_probability(p) == pytest.approx(g(g(p)), abs=1e-12)

    def test_crash_probability_matches_enumeration_at_depth2(self, rt_4_3_depth2):
        from repro import exact_failure_probability

        for p in (0.1, 0.3):
            exact = exact_failure_probability(rt_4_3_depth2.to_explicit(), p).value
            assert rt_4_3_depth2.crash_probability(p) == pytest.approx(exact, abs=1e-9)

    def test_critical_probability_value(self, rt_4_3_depth2):
        # Proposition 5.6 + the paper's direct calculation: pc = 0.2324.
        assert rt_4_3_depth2.critical_probability() == pytest.approx(0.2324, abs=5e-4)

    def test_fp_decays_below_critical_and_grows_above(self):
        below = [RecursiveThreshold(4, 3, h).crash_probability(0.15) for h in range(1, 6)]
        above = [RecursiveThreshold(4, 3, h).crash_probability(0.35) for h in range(1, 6)]
        assert below == sorted(below, reverse=True)
        assert below[-1] < 1e-3
        assert above == sorted(above)
        assert above[-1] > 0.9

    def test_proposition_5_7_upper_bound(self):
        # For p < 1/C(k, l-1) = 1/6 the bound (6p)^(2^h) dominates the true Fp.
        for depth in (1, 2, 3, 4):
            system = RecursiveThreshold(4, 3, depth)
            for p in (0.05, 0.1, 0.15):
                assert system.crash_probability(p) <= system.crash_probability_upper_bound(p) + 1e-12

    def test_invalid_probability_rejected(self, rt_4_3_depth2):
        with pytest.raises(Exception):
            rt_4_3_depth2.block_crash_function(1.4)


class TestSampling:
    def test_sampled_quorum_is_a_quorum(self, rt_4_3_depth2, rng):
        quorum_set = set(rt_4_3_depth2.quorums())
        for _ in range(10):
            assert rt_4_3_depth2.sample_quorum(rng) in quorum_set

    def test_sampled_quorum_size(self, rng):
        system = RecursiveThreshold(4, 3, 3)
        assert len(system.sample_quorum(rng)) == 27
