"""The implicit construction layer: sample_quorum_mask + ImplicitQuorumSystem.

Covers the sampling protocol's stream-compatibility with the frozenset
samplers, the implicit system's delegation contract (true measures, sampled
family), the strategy plumbing (Strategy.from_masks, support_strategy,
sampled_optimal_strategy), the exact-LP budget guard, and both workload
engines accepting implicit deployments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CrumblingWall,
    ExplicitQuorumSystem,
    ImplicitQuorumSystem,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    RegularGrid,
    Strategy,
    Universe,
    exact_load,
    masking_threshold,
)
from repro.core import bitset
from repro.exceptions import ComputationError, StrategyError
from repro.simulation import FaultScenario, run_event_workload, run_workload
from repro.simulation.engine import resolve_strategy, run_scenario

SAMPLED_CONSTRUCTIONS = [
    masking_threshold(13, 3),
    RegularGrid(4),
    MaskingGrid(5, 1),
    MGrid(5, 1),
    MPath(4, 1),
    CrumblingWall([3, 2, 2]),
    RecursiveThreshold(4, 3, 2),
]


class TestSampleQuorumMaskProtocol:
    @pytest.mark.parametrize(
        "system", SAMPLED_CONSTRUCTIONS, ids=lambda system: system.name
    )
    def test_stream_compatible_with_frozenset_sampler(self, system):
        # Same seed, same draws: the mask sampler and the frozenset sampler
        # must produce the same quorum sequence.
        mask_rng = np.random.default_rng(11)
        set_rng = np.random.default_rng(11)
        for _ in range(8):
            mask = system.sample_quorum_mask(mask_rng)
            quorum = system.sample_quorum(set_rng)
            assert mask == bitset.mask_of(quorum, system.universe)

    @pytest.mark.parametrize(
        "system", SAMPLED_CONSTRUCTIONS, ids=lambda system: system.name
    )
    def test_sampled_masks_are_quorums(self, system):
        family = set(system.iter_quorum_masks())
        rng = np.random.default_rng(5)
        for _ in range(8):
            assert system.sample_quorum_mask(rng) in family

    def test_generic_default_converts_sample_quorum(self):
        explicit = ExplicitQuorumSystem(range(4), [{0, 1, 2}, {1, 2, 3}])
        rng = np.random.default_rng(0)
        masks = {explicit.sample_quorum_mask(rng) for _ in range(20)}
        assert masks <= set(explicit.iter_quorum_masks())


class TestImplicitQuorumSystem:
    def test_measures_delegate_to_closed_forms(self):
        base = MGrid(20, 3)  # 36k quorums; measures come from closed forms, not enumeration
        implicit = ImplicitQuorumSystem(base, num_samples=32, seed=1)
        assert implicit.n == base.n == 400
        assert implicit.min_quorum_size() == base.min_quorum_size()
        assert implicit.min_intersection_size() == base.min_intersection_size()
        assert implicit.min_transversal_size() == base.min_transversal_size()
        assert implicit.masking_bound() == base.masking_bound()
        assert implicit.fairness() == base.fairness()
        assert implicit.num_quorums() == base.num_quorums()
        assert implicit.load() == base.load()
        assert implicit.is_implicit and not base.is_implicit

    def test_sampled_family_is_frozen_and_seed_deterministic(self):
        base = MGrid(16, 1)
        first = ImplicitQuorumSystem(base, num_samples=64, seed=9)
        second = ImplicitQuorumSystem(base, num_samples=64, seed=9)
        assert first.quorum_masks() == second.quorum_masks()
        assert len(first.quorum_masks()) <= 64
        # frozenset view is derived from the same sample
        assert [bitset.mask_of(q, base.universe) for q in first.quorums()] == list(
            first.quorum_masks()
        )
        different = ImplicitQuorumSystem(base, num_samples=64, seed=10)
        assert different.quorum_masks() != first.quorum_masks()

    def test_sample_is_made_of_genuine_quorums(self):
        base = MGrid(6, 1)
        implicit = ImplicitQuorumSystem(base, num_samples=48, seed=2)
        family = set(base.iter_quorum_masks())
        assert set(implicit.quorum_masks()) <= family
        implicit.validate()  # spot check must pass for a correct sampler

    def test_rejects_nested_wrap_and_bad_sample_count(self):
        base = RegularGrid(4)
        implicit = ImplicitQuorumSystem(base, num_samples=8)
        with pytest.raises(ComputationError):
            ImplicitQuorumSystem(implicit)
        with pytest.raises(ComputationError):
            ImplicitQuorumSystem(base, num_samples=0)

    def test_support_strategy_is_multiplicity_weighted(self):
        base = RegularGrid(3)  # 9 quorums; 64 samples guarantee collisions
        implicit = ImplicitQuorumSystem(base, num_samples=64, seed=4)
        strategy = implicit.support_strategy()
        assert sum(weight for _, weight in strategy.items()) == pytest.approx(1.0)
        counts = {}
        rng = np.random.default_rng(4)
        for _ in range(64):
            mask = base.sample_quorum_mask(rng)
            counts[mask] = counts.get(mask, 0) + 1
        for quorum, weight in strategy.items():
            mask = bitset.mask_of(quorum, base.universe)
            assert weight == pytest.approx(counts[mask] / 64)

    def test_sampled_optimal_strategy_rebalances(self):
        base = MGrid(8, 1)  # enumerable: C(8,2)^2 = 784 quorums
        implicit = ImplicitQuorumSystem(base, num_samples=256, seed=6)
        uniform_load = implicit.support_strategy().induced_system_load(base.universe)
        optimal = implicit.sampled_optimal_strategy()
        lp_load = optimal.induced_system_load(base.universe)
        # The LP can only improve on the empirical weights, and can never
        # beat the true L(Q) (it optimises over a sub-family).
        assert lp_load <= uniform_load + 1e-9
        assert lp_load >= exact_load(base).load - 1e-9
        # Cached: same object on repeat calls.
        assert implicit.sampled_optimal_strategy() is optimal

    def test_exact_load_budget_guard(self):
        big = ImplicitQuorumSystem(MGrid(30, 3), num_samples=16, seed=0)  # C(30,2)^2 = 189,225 quorums
        with pytest.raises(ComputationError, match="exceeds the exact-LP enumeration"):
            exact_load(big, quorum_limit=50_000)
        # A small base family is delegated to the real LP instead.
        small = ImplicitQuorumSystem(MGrid(8, 1), num_samples=16, seed=0)
        assert exact_load(small).load == pytest.approx(exact_load(MGrid(8, 1)).load)
        # quorum_limit=None lifts the budget (no TypeError) and delegates;
        # a base that cannot enumerate still raises its own clear guard.
        assert exact_load(small, quorum_limit=None).load == pytest.approx(
            exact_load(MGrid(8, 1)).load
        )
        unbounded = ImplicitQuorumSystem(MPath(12, 3), num_samples=4, seed=0)
        with pytest.raises(ComputationError, match="cannot enumerate"):
            exact_load(unbounded, quorum_limit=None)

    def test_load_requires_base_closed_form(self):
        explicit = ExplicitQuorumSystem(range(4), [{0, 1, 2}, {0, 3}])
        implicit = ImplicitQuorumSystem(explicit, num_samples=8, seed=0)
        with pytest.raises(ComputationError, match="no closed-form load"):
            implicit.load()

    def test_crash_probability_routes_through_analytic_dispatch(self):
        from repro import exact_failure_probability

        # A small explicit base has no closed form, but the analytic
        # dispatch falls back to exact enumeration — the implicit view must
        # report that true value, never the sampled sub-family's.
        explicit = ExplicitQuorumSystem(range(4), [{0, 1, 2}, {0, 3}])
        implicit = ImplicitQuorumSystem(explicit, num_samples=2, seed=0)
        assert implicit.crash_probability(0.3) == pytest.approx(
            exact_failure_probability(explicit, 0.3).value, abs=1e-12
        )
        # Grid bases get the exact row/column DP, not the base's Monte-Carlo.
        grid = MGrid(10, 1)
        wrapped = ImplicitQuorumSystem(grid, num_samples=8, seed=0)
        first = wrapped.crash_probability(0.1)
        assert first == wrapped.crash_probability(0.1)  # deterministic
        # Estimator kwargs opt back into the base's Monte-Carlo path.
        monte = wrapped.crash_probability(
            0.1, trials=2000, rng=np.random.default_rng(0)
        )
        assert abs(monte - first) < 0.05

    def test_fp_estimators_refuse_the_sampled_subfamily(self):
        from repro import (
            exact_failure_probability,
            monte_carlo_failure_probability,
        )
        from repro.core.availability import inclusion_exclusion_failure_probability

        implicit = ImplicitQuorumSystem(MGrid(4, 1), num_samples=4, seed=0)
        for estimator in (
            exact_failure_probability,
            monte_carlo_failure_probability,
            inclusion_exclusion_failure_probability,
        ):
            with pytest.raises(ComputationError, match="implicit system"):
                estimator(implicit, 0.1)


class TestEnginesAcceptImplicitSystems:
    def test_resolve_strategy_default_is_sampled_support(self):
        implicit = ImplicitQuorumSystem(MGrid(8, 1), num_samples=64, seed=3)
        strategy = resolve_strategy(implicit, None)
        assert set(strategy.support) <= set(implicit.quorums())
        assert resolve_strategy(implicit, "uniform").support == strategy.support

    def test_resolve_strategy_optimal_raises_above_budget(self):
        implicit = ImplicitQuorumSystem(MGrid(30, 3), num_samples=16, seed=0)
        with pytest.raises(ComputationError, match="exceeds the exact-LP enumeration"):
            resolve_strategy(implicit, "optimal")

    def test_vectorised_and_sequential_agree_on_implicit(self):
        implicit = ImplicitQuorumSystem(MGrid(16, 1), num_samples=128, seed=3)
        scenario = FaultScenario(crashed=frozenset({(0, 0), (3, 7)}))
        vectorised = run_scenario(
            implicit,
            b=1,
            num_operations=400,
            scenario=scenario,
            rng=np.random.default_rng(9),
        )
        sequential = run_scenario(
            implicit,
            b=1,
            num_operations=400,
            scenario=scenario,
            rng=np.random.default_rng(9),
            mode="sequential",
        )
        assert vectorised == sequential

    def test_implicit_run_matches_explicit_subfamily_run(self):
        # The engine only ever sees the strategy's support, so running the
        # implicit wrapper must equal running the materialised sample.
        implicit = ImplicitQuorumSystem(MGrid(8, 1), num_samples=64, seed=12)
        strategy = implicit.support_strategy()
        explicit = ExplicitQuorumSystem(
            implicit.universe, implicit.quorums(), name="sample", validate=False
        )
        kwargs = dict(b=1, num_operations=300, strategy=strategy)
        implicit_result = run_workload(
            implicit, rng=np.random.default_rng(21), **kwargs
        )
        explicit_result = run_workload(
            explicit, rng=np.random.default_rng(21), **kwargs
        )
        assert implicit_result == explicit_result

    def test_event_engine_runs_implicit_deployment(self):
        implicit = ImplicitQuorumSystem(MGrid(8, 1), num_samples=64, seed=5)
        result = run_event_workload(
            implicit,
            b=1,
            num_clients=4,
            operations_per_client=5,
            rng=np.random.default_rng(13),
        )
        assert result.operations == 20
        assert result.failed_operations == 0
        assert result.check is not None and result.check.ok


class TestStrategyFromMasks:
    def test_merges_duplicates_and_primes_mask_cache(self):
        universe = Universe.of_size(5)
        masks = (0b00111, 0b11100, 0b00111)
        strategy = Strategy.from_masks(universe, masks, (0.25, 0.5, 0.25))
        assert len(strategy) == 2
        assert strategy.probability(frozenset({0, 1, 2})) == pytest.approx(0.5)
        assert strategy.probability(frozenset({2, 3, 4})) == pytest.approx(0.5)
        # The cache is primed in support order, no frozenset round-trip.
        assert strategy.support_masks(universe) == (0b00111, 0b11100)

    def test_uniform_default_and_normalisation(self):
        universe = Universe.of_size(4)
        strategy = Strategy.from_masks(universe, (0b0111, 0b1110))
        assert strategy.probability(frozenset({0, 1, 2})) == pytest.approx(0.5)
        with pytest.raises(StrategyError):
            Strategy.from_masks(universe, (0b0111, 0b1110), (1.0,))
        with pytest.raises(StrategyError):
            Strategy.from_masks(universe, (0b0111,), (-1.0,))

    def test_sampling_consistent_with_engine_rows(self):
        universe = Universe.of_size(6)
        masks = (0b000111, 0b011100, 0b110001)
        strategy = Strategy.from_masks(universe, masks, (0.2, 0.3, 0.5))
        engine = strategy.support_engine(universe)
        assert engine.masks == strategy.support_masks(universe)
        indices = strategy.sample_many(np.random.default_rng(2), 200)
        assert set(np.unique(indices)) <= {0, 1, 2}
