"""Unit tests for threshold quorum systems (the [MR98a] baseline and the boosting block)."""

from __future__ import annotations

import math

import pytest
from scipy import stats

from repro import (
    ConstructionError,
    ThresholdQuorumSystem,
    boosting_block,
    exact_failure_probability,
    exact_load,
    majority,
    masking_threshold,
)


class TestConstruction:
    def test_rejects_non_intersecting_threshold(self):
        with pytest.raises(ConstructionError):
            ThresholdQuorumSystem(6, 3)

    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(ConstructionError):
            ThresholdQuorumSystem(5, 0)
        with pytest.raises(ConstructionError):
            ThresholdQuorumSystem(5, 6)

    def test_masking_threshold_size_formula(self):
        system = masking_threshold(21, 5)
        assert system.k == math.ceil((21 + 11) / 2)

    def test_masking_threshold_requires_4b_lt_n(self):
        with pytest.raises(ConstructionError):
            masking_threshold(12, 3)

    def test_boosting_block_shape(self):
        block = boosting_block(2)
        assert block.n == 9
        assert block.k == 7
        assert block.min_intersection_size() == 5
        assert block.min_transversal_size() == 3
        assert block.masking_bound() == 2

    def test_majority_shape(self):
        assert majority(7).k == 4
        assert majority(8).k == 5


class TestAnalyticVsEnumerated:
    @pytest.mark.parametrize("n,k", [(5, 3), (5, 4), (7, 5), (9, 7), (9, 5)])
    def test_parameters_match_enumeration(self, n, k):
        system = ThresholdQuorumSystem(n, k)
        explicit = system.to_explicit()
        assert system.num_quorums() == math.comb(n, k) == explicit.num_quorums()
        assert explicit.min_quorum_size() == k
        assert explicit.min_intersection_size() == 2 * k - n
        assert explicit.min_transversal_size() == n - k + 1
        assert explicit.fairness() == system.fairness()

    def test_masking_bound_formula(self):
        # ceil((n+2b+1)/2)-of-n masks exactly b when sized tightly.
        for n, b in [(13, 3), (17, 4), (21, 5), (9, 2)]:
            system = masking_threshold(n, b)
            assert system.masking_bound() >= b
            assert system.min_intersection_size() >= 2 * b + 1
            assert system.min_transversal_size() >= b + 1

    def test_load_is_k_over_n(self):
        system = ThresholdQuorumSystem(9, 7)
        assert system.load() == pytest.approx(7 / 9)
        assert exact_load(system).load == pytest.approx(7 / 9, abs=1e-6)

    def test_table2_threshold_load_is_at_least_half(self):
        # Table 2: the Threshold baseline's load is 1/2 + O(b/n).
        for n, b in [(16, 3), (64, 15), (256, 63)]:
            assert masking_threshold(n, b).load() >= 0.5


class TestAvailability:
    def test_crash_probability_is_binomial_tail(self):
        system = ThresholdQuorumSystem(7, 5)
        p = 0.2
        expected = float(stats.binom.sf(2, 7, p))
        assert system.crash_probability(p) == pytest.approx(expected)

    def test_crash_probability_matches_enumeration(self):
        system = ThresholdQuorumSystem(7, 5)
        for p in (0.1, 0.3, 0.6):
            exact = exact_failure_probability(system, p).value
            assert system.crash_probability(p) == pytest.approx(exact, abs=1e-12)

    def test_condorcet_behaviour_below_one_half(self):
        # The MR98a threshold is Condorcet: Fp -> 0 for p < 1/2 as n grows.
        values = [masking_threshold(n, 1).crash_probability(0.3) for n in (9, 17, 33, 65)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.05

    def test_chernoff_bound_dominates_exact(self):
        block = boosting_block(10)  # 31-of-41
        for p in (0.05, 0.1, 0.2):
            assert block.crash_probability(p) <= block.chernoff_crash_bound(p) + 1e-12

    def test_chernoff_bound_vacuous_above_threshold(self):
        block = boosting_block(5)
        assert block.chernoff_crash_bound(0.5) == 1.0


class TestSampling:
    def test_sample_quorum_has_right_size(self, rng):
        system = ThresholdQuorumSystem(9, 7)
        for _ in range(5):
            quorum = system.sample_quorum(rng)
            assert len(quorum) == 7
            assert quorum <= system.universe.as_frozenset()
