"""Shared fixtures for the test-suite.

Fixtures build small, fully enumerable instances of every construction so
that analytic values can be cross-checked against exhaustive computation, and
a deterministic random generator so that Monte-Carlo assertions are stable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BoostedFPP,
    ExplicitQuorumSystem,
    FiniteProjectivePlane,
    MGrid,
    MPath,
    MaskingGrid,
    RecursiveThreshold,
    RegularGrid,
    ThresholdQuorumSystem,
    majority,
    masking_threshold,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_system() -> ExplicitQuorumSystem:
    """A tiny hand-written quorum system used by the core-model tests.

    Universe {0..4}; quorums are the three 3-subsets {0,1,2}, {1,2,3},
    {2,3,4} — every pair intersects (element 2 is in all of them).
    """
    return ExplicitQuorumSystem(
        range(5),
        [{0, 1, 2}, {1, 2, 3}, {2, 3, 4}],
        name="simple",
    )


@pytest.fixture
def singleton_system() -> ExplicitQuorumSystem:
    """The degenerate system with a single one-element quorum."""
    return ExplicitQuorumSystem([0, 1], [{0}], name="singleton")


@pytest.fixture
def majority_5() -> ThresholdQuorumSystem:
    """Majority over five servers (3-of-5)."""
    return majority(5)


@pytest.fixture
def threshold_9_7() -> ThresholdQuorumSystem:
    """The 7-of-9 threshold system (a 2-masking threshold)."""
    return ThresholdQuorumSystem(9, 7)


@pytest.fixture
def mr98_threshold() -> ThresholdQuorumSystem:
    """The [MR98a] Threshold baseline over 13 servers masking b = 3."""
    return masking_threshold(13, 3)


@pytest.fixture
def mgrid_7_3() -> MGrid:
    """The Figure 1 instance: M-Grid over a 7x7 grid masking b = 3."""
    return MGrid(7, 3)


@pytest.fixture
def masking_grid_9_2() -> MaskingGrid:
    """The [MR98a] Grid baseline over a 9x9 grid masking b = 2."""
    return MaskingGrid(9, 2)


@pytest.fixture
def regular_grid_4() -> RegularGrid:
    """The Maekawa grid over a 4x4 universe."""
    return RegularGrid(4)


@pytest.fixture
def rt_4_3_depth2() -> RecursiveThreshold:
    """The Figure 2 instance: RT(4,3) of depth 2 (16 servers)."""
    return RecursiveThreshold(4, 3, 2)


@pytest.fixture
def fpp_order2() -> FiniteProjectivePlane:
    """The Fano plane (PG(2,2)) as a quorum system."""
    return FiniteProjectivePlane(2)


@pytest.fixture
def fpp_order3() -> FiniteProjectivePlane:
    """PG(2,3) as a quorum system (13 points)."""
    return FiniteProjectivePlane(3)


@pytest.fixture
def boost_fpp_small() -> BoostedFPP:
    """boostFPP(q=2, b=1): the Fano plane over 4-of-5 threshold blocks (35 servers)."""
    return BoostedFPP(2, 1)


@pytest.fixture
def mpath_5_2() -> MPath:
    """M-Path over a 5x5 triangulated grid masking b = 2."""
    return MPath(5, 2)


@pytest.fixture
def mpath_9_4() -> MPath:
    """The Figure 3 instance: M-Path over a 9x9 grid masking b = 4."""
    return MPath(9, 4)
