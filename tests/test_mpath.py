"""Unit tests for the M-Path construction (Section 7, Figure 3)."""

from __future__ import annotations

import pytest

from repro import ComputationError, ConstructionError, MPath, load_lower_bound


class TestConstruction:
    def test_figure3_instance(self, mpath_9_4):
        # Figure 3: a 9x9 grid with b = 4 -> 3 LR and 3 TB paths per quorum.
        assert mpath_9_4.n == 81
        assert mpath_9_4.k == 3

    def test_parameter_validation(self):
        with pytest.raises(ConstructionError):
            MPath(1, 0)
        with pytest.raises(ConstructionError):
            MPath(5, -1)
        with pytest.raises(ConstructionError):
            MPath(3, 5)       # sqrt(2b+1) does not fit
        with pytest.raises(ConstructionError):
            MPath(5, 4)       # resilience 5-3 = 2 < b

    def test_proposition_7_1_bound_on_b(self):
        # b close to (1 - o(1)) sqrt(n) is achievable on larger grids.
        system = MPath(16, 10)
        assert system.masking_bound() >= 10


class TestMeasures:
    def test_proposition_7_1_parameters(self, mpath_9_4):
        assert mpath_9_4.min_intersection_size() == 9       # k^2 >= 2b+1 = 9
        assert mpath_9_4.min_transversal_size() == 9 - 3 + 1
        assert mpath_9_4.min_quorum_size() <= 2 * (81 * 9) ** 0.5
        assert mpath_9_4.masking_bound() == 4

    def test_straight_line_quorums_match_mgrid_shape(self, mpath_5_2):
        subsystem = mpath_5_2.straight_line_subsystem()
        subsystem.validate()
        assert subsystem.min_quorum_size() == mpath_5_2.min_quorum_size()
        # Straight-line quorums of the sub-family already intersect in >= 2b+1.
        assert subsystem.min_intersection_size() >= 2 * mpath_5_2.b + 1

    def test_straight_line_intersection_dominates_analytic_bound(self, mpath_5_2):
        # The analytic value k^2 is a lower bound valid for the full (bent
        # path) family; the straight-line sub-family can only intersect more.
        subsystem = mpath_5_2.straight_line_subsystem()
        assert subsystem.min_intersection_size() >= mpath_5_2.min_intersection_size()

    def test_full_enumeration_is_refused(self, mpath_5_2):
        with pytest.raises(ComputationError):
            mpath_5_2.quorums()

    def test_proposition_7_2_load_is_optimal(self):
        for side, b in [(8, 3), (12, 7), (16, 10)]:
            system = MPath(side, b)
            assert system.load() <= 2.1 * load_lower_bound(system.n, b)

    def test_load_value(self, mpath_9_4):
        fraction = 3 / 9
        assert mpath_9_4.load() == pytest.approx(2 * fraction - fraction ** 2)

    def test_sample_quorum_is_straight_line_quorum(self, mpath_5_2, rng):
        quorums = set(mpath_5_2.straight_line_subsystem().quorums())
        for _ in range(5):
            assert mpath_5_2.sample_quorum(rng) in quorums


class TestSurvival:
    def test_fault_free_grid_survives(self, mpath_5_2):
        assert mpath_5_2.survives(set())

    def test_crashing_a_transversal_kills_the_system(self, mpath_5_2):
        # Crash one vertex in each of side - k + 1 = 3 rows... actually crash
        # whole columns: removing side - k + 1 columns leaves fewer than k
        # possible disjoint TB paths' worth of columns? Use rows instead:
        # crashing 3 full rows leaves only 2 rows, fewer than k = 3 disjoint
        # LR paths cannot exist... they could use diagonal detours, so crash
        # entire columns to block LR paths directly.
        crashed = {(i, j) for i in (1, 2, 3) for j in range(1, 6)}
        # Columns 1..3 fully crashed: at most 0 LR crossings remain.
        assert not mpath_5_2.survives(crashed)

    def test_partial_crashes_leave_quorums(self, mpath_5_2):
        crashed = {(1, 1), (2, 2), (3, 3)}
        assert mpath_5_2.survives(crashed)

    def test_bent_paths_count_toward_survival(self):
        # Crash part of a row so straight-line quorums die but bent paths survive.
        system = MPath(5, 1)  # k = 2
        # Crash three scattered vertices; with only 3/25 vertices down and
        # k = 2, disjoint crossings still exist via detours.
        crashed = {(3, 3), (2, 4), (4, 2)}
        assert system.survives(crashed)


class TestAvailability:
    def test_crash_probability_extremes(self, mpath_5_2, rng):
        assert mpath_5_2.crash_probability(0.0, trials=5, rng=rng) == 0.0
        assert mpath_5_2.crash_probability(1.0, trials=5, rng=rng) == 1.0

    def test_invalid_inputs_rejected(self, mpath_5_2, rng):
        with pytest.raises(ComputationError):
            mpath_5_2.crash_probability(1.5, trials=5, rng=rng)
        with pytest.raises(ComputationError):
            mpath_5_2.crash_probability(0.1, trials=0, rng=rng)

    def test_fp_decreases_with_grid_size_below_threshold(self, rng):
        # Proposition 7.3: for p < 1/2 the crash probability shrinks with n.
        small = MPath(5, 1).crash_probability(0.3, trials=150, rng=rng)
        large = MPath(11, 1).crash_probability(0.3, trials=150, rng=rng)
        assert large <= small + 0.05

    def test_analytic_upper_bound_dominates_monte_carlo(self, rng):
        system = MPath(12, 2)
        p = 0.05
        bound = system.crash_probability_upper_bound(p)
        estimate = system.crash_probability(p, trials=100, rng=rng)
        assert estimate <= bound + 0.05

    def test_upper_bound_requires_small_p(self, mpath_5_2):
        with pytest.raises(ComputationError):
            mpath_5_2.crash_probability_upper_bound(0.4)
        with pytest.raises(ComputationError):
            mpath_5_2.crash_probability_upper_bound(0.1, p_prime=0.05)

    def test_upper_bound_decreases_with_grid_size(self):
        values = [MPath(side, 2).crash_probability_upper_bound(0.05) for side in (8, 16, 24)]
        assert values == sorted(values, reverse=True)
