"""Unit tests for :mod:`repro.core.universe`."""

from __future__ import annotations

import pytest

from repro import InvalidQuorumSystemError, Universe


class TestConstruction:
    def test_of_size_builds_integer_universe(self):
        universe = Universe.of_size(5)
        assert universe.size == 5
        assert universe.elements == (0, 1, 2, 3, 4)

    def test_preserves_declared_order(self):
        universe = Universe(["c", "a", "b"])
        assert universe.elements == ("c", "a", "b")

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidQuorumSystemError):
            Universe([1, 2, 2])

    def test_rejects_empty(self):
        with pytest.raises(InvalidQuorumSystemError):
            Universe([])

    def test_of_size_rejects_non_positive(self):
        with pytest.raises(InvalidQuorumSystemError):
            Universe.of_size(0)

    def test_accepts_tuple_elements(self):
        universe = Universe([(0, 0), (0, 1), (1, 0)])
        assert (0, 1) in universe
        assert universe.size == 3


class TestLookups:
    def test_index_roundtrip(self):
        universe = Universe("abcde")
        for position, element in enumerate(universe):
            assert universe.index_of(element) == position
            assert universe.element_at(position) == element

    def test_index_of_unknown_element_raises(self):
        universe = Universe.of_size(3)
        with pytest.raises(InvalidQuorumSystemError):
            universe.index_of(99)

    def test_indices_of_preserves_order(self):
        universe = Universe("abcd")
        assert universe.indices_of(["d", "a"]) == (3, 0)

    def test_contains(self):
        universe = Universe.of_size(4)
        assert 3 in universe
        assert 4 not in universe

    def test_subset_validates_membership(self):
        universe = Universe.of_size(4)
        assert universe.subset([1, 3]) == frozenset({1, 3})
        with pytest.raises(InvalidQuorumSystemError):
            universe.subset([1, 9])


class TestEqualityAndRepr:
    def test_equality_depends_on_order(self):
        assert Universe([1, 2, 3]) == Universe([1, 2, 3])
        assert Universe([1, 2, 3]) != Universe([3, 2, 1])

    def test_hashable(self):
        assert len({Universe.of_size(3), Universe.of_size(3)}) == 1

    def test_repr_small_and_large(self):
        assert "Universe" in repr(Universe.of_size(3))
        assert "size=20" in repr(Universe.of_size(20))

    def test_as_frozenset(self):
        assert Universe.of_size(3).as_frozenset() == frozenset({0, 1, 2})


class TestRelabelAndUnion:
    def test_relabel_tags_every_element(self):
        universe = Universe.of_size(3)
        tagged = universe.relabel("copy-a")
        assert tagged.elements == (("copy-a", 0), ("copy-a", 1), ("copy-a", 2))

    def test_relabelled_copies_are_disjoint(self):
        universe = Universe.of_size(2)
        first = universe.relabel(0)
        second = universe.relabel(1)
        assert not first.as_frozenset() & second.as_frozenset()

    def test_disjoint_union_concatenates(self):
        first = Universe.of_size(2).relabel("x")
        second = Universe.of_size(2).relabel("y")
        union = Universe.disjoint_union([first, second])
        assert union.size == 4
        assert union.elements[:2] == first.elements

    def test_disjoint_union_rejects_overlap(self):
        with pytest.raises(InvalidQuorumSystemError):
            Universe.disjoint_union([Universe.of_size(2), Universe.of_size(3)])
